// Shared deterministic thread-pool runtime.
//
// The simulator's contract is that results are bit-identical for any worker
// count, so every parallel construct in the repo is built from two
// order-preserving primitives provided here:
//
//  - parallel_for(n, fn): runs fn(i) for i in [0, n) on the pool. Each index
//    is executed exactly once by exactly one thread; work is handed out in
//    dynamically sized chunks, so *which* thread runs an index varies between
//    runs — any state fn touches must be per-index.
//  - ordered_reduce(n, init, produce, combine): materializes per-index
//    partials with parallel_for and then combines them serially in index
//    order 0..n-1. Floating-point summation order is therefore a function of
//    n alone, never of the worker count or scheduling — this is what makes
//    reductions bit-identical for any thread count.
//
// One pool instance owns `lanes - 1` persistent worker threads; the caller of
// parallel_for is the extra lane. Nested parallel_for calls (a task that
// itself reaches a parallel region, e.g. a runner worker training a client
// whose matmuls are pool-aware) execute inline on the calling thread, so the
// pool never deadlocks and never oversubscribes the machine.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.h"

namespace apf::util {

class ThreadPool {
 public:
  /// `lanes` = total concurrent execution lanes (worker threads + the
  /// calling thread). 0 picks one lane per hardware core. A pool with one
  /// lane spawns no threads and runs everything inline.
  explicit ThreadPool(std::size_t lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + caller).
  std::size_t lanes() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n); blocks until all complete. The first
  /// exception thrown by fn is rethrown on the caller after all indices
  /// finish. Calls from inside a pool task run inline (see header comment).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the current thread is executing a ThreadPool task (any pool).
  static bool in_worker();

  /// Deterministic reduction: partials[i] = produce(i) in parallel, then
  /// acc = combine(acc, partials[i]) serially for i = 0..n-1. The combine
  /// order is independent of the worker count, so floating-point results are
  /// bit-identical for any pool size.
  template <typename T, typename Produce, typename Combine>
  T ordered_reduce(std::size_t n, T init, Produce&& produce,
                   Combine&& combine) {
    std::vector<T> partials(n);
    parallel_for(n, [&](std::size_t i) { partials[i] = produce(i); });
    T acc = std::move(init);
    for (std::size_t i = 0; i < n; ++i) {
      acc = combine(std::move(acc), std::move(partials[i]));
    }
    return acc;
  }

  /// Process-wide pool shared by the tensor/evaluation hot paths, sized to
  /// the hardware (lazily constructed). See compute_pool() below.
  static ThreadPool& global();

 private:
  // One parallel region. Only one Job is live at a time (submit_mutex_
  // serializes submitters), so the per-job lane count and exception slot
  // live on the pool itself, guarded by mutex_; the Job carries only the
  // lock-free work-stealing state.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 1;
    // apf-lint: unguarded(lock-free chunk hand-out; atomics synchronize)
    std::atomic<std::size_t> next{0};
    // apf-lint: unguarded(completed-index count; acq_rel atomics synchronize)
    std::atomic<std::size_t> done{0};
  };

  void worker_loop() APF_EXCLUDES(mutex_);
  void run_chunks(Job& job) APF_EXCLUDES(mutex_);

  // apf-lint: unguarded(filled in ctor, joined in dtor; immutable between)
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_cv_;  // workers wait here for a job
  CondVar done_cv_;  // the submitter waits here
  // Serializes concurrent parallel_for calls; always taken before mutex_
  // (the declared ordering edge makes an inversion a compile error).
  Mutex submit_mutex_ APF_ACQUIRED_BEFORE(mutex_);
  Job* job_ APF_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_seq_ APF_GUARDED_BY(mutex_) = 0;
  bool stop_ APF_GUARDED_BY(mutex_) = false;
  int active_ APF_GUARDED_BY(mutex_) = 0;    // lanes inside run_chunks
  std::exception_ptr error_ APF_GUARDED_BY(mutex_);  // first failure
};

/// Pool used by the library's internal hot paths (tensor kernels, parallel
/// evaluation) when the caller does not pass one explicitly. Defaults to
/// ThreadPool::global(); benchmarks and tests may substitute their own pool
/// to control the lane count. Not synchronized — swap only while no kernels
/// are running.
ThreadPool& compute_pool();

/// Replaces the compute pool (nullptr restores the process-wide default).
/// The caller keeps ownership of `pool`, which must outlive the replacement.
void set_compute_pool(ThreadPool* pool);

}  // namespace apf::util
