// Minimal leveled logger writing to stderr.
//
// The FL simulator logs per-round progress at Info level; tests silence the
// logger by raising the threshold. Thread-safe: worker threads (pool tasks,
// APF_WARN from tripwires) may emit concurrently — messages are serialized
// by a mutex so lines never interleave, and the level is atomic.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace apf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects emission to `sink` (nullptr restores stderr). Both the pointer
/// and the pointee are guarded by the emit mutex: log_emit streams a whole
/// line under the lock, so swapping sinks never tears a message. The caller
/// keeps ownership of `sink` and must reset to nullptr before destroying it.
void set_log_sink(std::ostream* sink);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace apf

#define APF_LOG(level, stream_expr)                                     \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::apf::log_level())) { \
      std::ostringstream apf_log_oss_;                                   \
      apf_log_oss_ << stream_expr;                                       \
      ::apf::detail::log_emit(level, apf_log_oss_.str());                \
    }                                                                    \
  } while (0)

#define APF_DEBUG(stream_expr) APF_LOG(::apf::LogLevel::kDebug, stream_expr)
#define APF_INFO(stream_expr) APF_LOG(::apf::LogLevel::kInfo, stream_expr)
#define APF_WARN(stream_expr) APF_LOG(::apf::LogLevel::kWarn, stream_expr)
#define APF_ERROR(stream_expr) APF_LOG(::apf::LogLevel::kError, stream_expr)
