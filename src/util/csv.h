// CSV emission for experiment series.
//
// Figure benches print their curves as CSV blocks ("# series: <name>" headers
// followed by rows) so results can be re-plotted externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace apf {

/// A named column of doubles.
struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

/// Writes columns side by side as CSV. Shorter columns pad with blanks.
void write_csv(std::ostream& os, const std::vector<CsvColumn>& columns);

/// Convenience: write to stdout with a "# figure: <title>" preamble.
void print_figure_csv(const std::string& title,
                      const std::vector<CsvColumn>& columns);

}  // namespace apf
