#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace apf {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Ema::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * value_ + (1.0 - alpha_) * x;
  }
}

double percentile(std::vector<double> values, double p) {
  APF_CHECK(!values.empty());
  APF_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<double> best_ever(const std::vector<double>& series) {
  std::vector<double> out(series.size());
  double best = -1e300;
  for (std::size_t i = 0; i < series.size(); ++i) {
    best = std::max(best, series[i]);
    out[i] = best;
  }
  return out;
}

}  // namespace apf
