#include "util/csv.h"

#include <iomanip>
#include <iostream>

namespace apf {

void write_csv(std::ostream& os, const std::vector<CsvColumn>& columns) {
  if (columns.empty()) return;
  std::size_t rows = 0;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) os << ',';
    os << columns[c].name;
    rows = std::max(rows, columns[c].values.size());
  }
  os << '\n';
  os << std::setprecision(6);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) os << ',';
      if (r < columns[c].values.size()) os << columns[c].values[r];
    }
    os << '\n';
  }
}

void print_figure_csv(const std::string& title,
                      const std::vector<CsvColumn>& columns) {
  std::cout << "# figure: " << title << '\n';
  write_csv(std::cout, columns);
  std::cout << std::flush;
}

}  // namespace apf
