#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace apf {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) oss << 'x';
    oss << shape[i];
  }
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  APF_CHECK_MSG(data_.size() == shape_numel(shape_),
                "data size " << data_.size() << " != shape "
                             << shape_str(shape_));
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform_float(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  APF_CHECK_MSG(axis < shape_.size(), "axis " << axis << " out of rank "
                                              << shape_.size());
  return shape_[axis];
}

float& Tensor::at(std::size_t i) {
  APF_CHECK_MSG(i < data_.size(), "index " << i << " >= " << data_.size());
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  APF_CHECK_MSG(i < data_.size(), "index " << i << " >= " << data_.size());
  return data_[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  APF_CHECK(rank() == 2);
  APF_CHECK(i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  APF_CHECK(rank() == 3);
  APF_CHECK(i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  APF_CHECK(rank() == 4);
  APF_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3]);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

Tensor Tensor::reshaped(Shape shape) const {
  APF_CHECK_MSG(shape_numel(shape) == data_.size(),
                "reshape " << shape_str(shape_) << " -> " << shape_str(shape));
  return Tensor(std::move(shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& other) const {
  APF_CHECK_MSG(shape_ == other.shape_, "shape mismatch "
                                            << shape_str(shape_) << " vs "
                                            << shape_str(other.shape_));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (auto& v : data_) v += s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return data_.empty() ? 0.f
                       : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  APF_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  APF_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(float s, const Tensor& a) { return a * s; }

Tensor hadamard(const Tensor& a, const Tensor& b) {
  APF_CHECK(a.same_shape(b));
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] *= b[i];
  return out;
}

float dot(const Tensor& a, const Tensor& b) {
  APF_CHECK(a.numel() == b.numel());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

}  // namespace apf
