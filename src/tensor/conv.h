// im2col / col2im lowering for 2-D convolutions.
//
// Conv2d layers lower convolution to matmul through im2col: each output
// spatial position becomes a column of unfolded input patches. col2im is the
// adjoint, used in the backward pass to scatter patch gradients back to the
// input image.
#pragma once

#include "tensor/tensor.h"

namespace apf {

/// Geometry of a conv/pool window over one image.
struct ConvGeom {
  std::size_t channels = 0;
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// Unfolds one image (C x H x W flat) to a (C*k*k) x (out_h*out_w) matrix.
Tensor im2col(const float* image, const ConvGeom& g);

/// Adjoint of im2col: accumulates a (C*k*k) x (out_h*out_w) matrix back into
/// an image buffer of size C*H*W (caller zeroes the buffer first).
void col2im(const Tensor& cols, const ConvGeom& g, float* image);

}  // namespace apf
