#include "tensor/conv.h"

#include "util/error.h"

namespace apf {

Tensor im2col(const float* image, const ConvGeom& g) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = g.channels * g.kernel * g.kernel;
  Tensor cols({rows, oh * ow});
  float* out = cols.raw();
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t row = (c * g.kernel + kh) * g.kernel + kw;
        float* orow = out + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row for this output row / kernel offset (with padding).
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            float v = 0.f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.in_w)) {
              v = image[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                        static_cast<std::size_t>(ix)];
            }
            orow[y * ow + x] = v;
          }
        }
      }
    }
  }
  return cols;
}

void col2im(const Tensor& cols, const ConvGeom& g, float* image) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = g.channels * g.kernel * g.kernel;
  APF_CHECK(cols.rank() == 2 && cols.dim(0) == rows &&
            cols.dim(1) == oh * ow);
  const float* in = cols.raw();
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t row = (c * g.kernel + kh) * g.kernel + kw;
        const float* irow = in + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            image[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                  static_cast<std::size_t>(ix)] += irow[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace apf
