#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/thread_pool.h"

namespace apf {

namespace {
// Kernels fan rows out to the compute pool only when the arithmetic is heavy
// enough to amortize dispatch. Below the threshold (or inside an enclosing
// pool task, where parallel_for runs inline anyway) they stay serial.
// Parallel and serial paths perform bit-identical arithmetic per output
// element, so this decision never changes results.
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 18;

bool use_pool(std::size_t flops) {
  if (flops < kParallelFlopThreshold) return false;
  if (util::ThreadPool::in_worker()) return false;
  return util::compute_pool().lanes() > 1;
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  APF_CHECK(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  APF_CHECK_MSG(b.dim(0) == k, "matmul inner dims " << k << " vs " << b.dim(0));
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Each output row is produced start-to-finish by one thread, so the
  // per-element accumulation order is the serial order for any lane count.
  auto compute_row = [&](std::size_t i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = pa[i * k + kk];
      if (aval == 0.f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  };
  if (use_pool(2 * m * k * n)) {
    util::compute_pool().parallel_for(m, compute_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) compute_row(i);
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  // C(k x n) = A^T * B where A is (m x k), B is (m x n).
  APF_CHECK(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  APF_CHECK(b.dim(0) == m);
  Tensor c({k, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  if (use_pool(2 * m * k * n)) {
    // Output rows (one per kk) are independent; within a row the reduction
    // over i runs ascending, matching the serial kernel's per-element
    // addition order exactly (the i-outer serial loop also touches each
    // (kk, j) element for i = 0, 1, ... with the same zero-skip).
    util::compute_pool().parallel_for(k, [&](std::size_t kk) {
      float* crow = pc + kk * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float aval = pa[i * k + kk];
        if (aval == 0.f) continue;
        const float* brow = pb + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    });
    return c;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = arow[kk];
      if (aval == 0.f) continue;
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  // C(m x r) = A * B^T where A is (m x k), B is (r x k).
  APF_CHECK(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), r = b.dim(0);
  APF_CHECK(b.dim(1) == k);
  Tensor c({m, r});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  auto compute_row = [&](std::size_t i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < r; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * brow[kk];
      pc[i * r + j] = static_cast<float>(acc);
    }
  };
  if (use_pool(2 * m * k * r)) {
    util::compute_pool().parallel_for(m, compute_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) compute_row(i);
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  APF_CHECK(a.rank() == 2);
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) t[j * m + i] = a[i * n + j];
  return t;
}

Tensor softmax_rows(const Tensor& logits) {
  APF_CHECK(logits.rank() == 2);
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = logits.raw() + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    float* orow = out.raw() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < n; ++j) orow[j] *= inv;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& t) {
  APF_CHECK(t.rank() == 2);
  const std::size_t m = t.dim(0), n = t.dim(1);
  APF_CHECK(n > 0);
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = t.raw() + i * n;
    idx[i] = static_cast<std::size_t>(
        std::max_element(row, row + n) - row);
  }
  return idx;
}

void add_bias_rows(Tensor& t, const Tensor& bias) {
  APF_CHECK(t.rank() == 2);
  const std::size_t m = t.dim(0), n = t.dim(1);
  APF_CHECK(bias.numel() == n);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = t.raw() + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

}  // namespace apf
