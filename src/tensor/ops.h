// Linear-algebra kernels over Tensor: matmul family, transpose, row softmax.
//
// These are the hot loops of the NN substrate. matmul uses a cache-friendly
// ikj ordering; nothing here allocates beyond its output.
#pragma once

#include "tensor/tensor.h"

namespace apf {

/// C = A(mxk) * B(kxn).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(m x k -> k x m) * B ... computed without materializing A^T.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A * B^T, without materializing B^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose(const Tensor& a);

/// Row-wise softmax of a 2-D tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise argmax of a 2-D tensor.
std::vector<std::size_t> argmax_rows(const Tensor& t);

/// Adds bias vector (length n) to every row of a (m x n) tensor, in place.
void add_bias_rows(Tensor& t, const Tensor& bias);

}  // namespace apf
