// Dense float32 tensor.
//
// The substrate under the neural-network layers: a contiguous, row-major,
// reference-free value type. Everything APF needs reduces to flat float
// vectors, so the tensor stays deliberately simple — no views, no strides, no
// broadcasting beyond what the layers use. Copy is deep; move is cheap.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/debug.h"
#include "util/rng.h"

namespace apf {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for a rank-0 shape).
std::size_t shape_numel(const Shape& shape);

/// "2x3x4"-style rendering for diagnostics.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  /// Empty (rank-0, zero elements is represented as shape {0}).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constant-filled tensor.
  Tensor(Shape shape, float value);

  /// Adopts `data`; data.size() must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// i.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo = -1.f, float hi = 1.f);
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor normal(Shape shape, Rng& rng, float mean = 0.f,
                       float stddev = 1.f);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::size_t i) {
    APF_DEBUG_ASSERT_MSG(i < data_.size(),
                         "tensor index " << i << " >= " << data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    APF_DEBUG_ASSERT_MSG(i < data_.size(),
                         "tensor index " << i << " >= " << data_.size());
    return data_[i];
  }

  /// Bounds-checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Multi-dimensional accessors for the common ranks.
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Same data, new shape; numel must match.
  Tensor reshaped(Shape shape) const;

  void fill(float value);
  void zero() { fill(0.f); }

  /// In-place elementwise arithmetic (shapes must match for tensor forms).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);
  Tensor& operator+=(float s);

  /// this += alpha * other (axpy).
  void add_scaled(const Tensor& other, float alpha);

  /// Reductions over all elements.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm of the flattened tensor.
  float norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  void check_same_shape(const Tensor& other) const;

  Shape shape_{0};
  std::vector<float> data_;
};

/// Out-of-place arithmetic.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);
Tensor operator*(float s, const Tensor& a);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// Dot product of two flattened tensors of equal numel.
float dot(const Tensor& a, const Tensor& b);

}  // namespace apf
