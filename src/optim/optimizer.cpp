#include "optim/optimizer.h"

#include <cmath>

#include "util/debug.h"
#include "util/error.h"

namespace apf::optim {

Optimizer::Optimizer(std::vector<nn::ParamRef> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  APF_CHECK(!params_.empty());
  APF_CHECK(lr > 0.0);
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.param->zero_grad();
}

Sgd::Sgd(std::vector<nn::ParamRef> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  APF_CHECK(momentum >= 0.0 && momentum < 1.0);
  APF_CHECK(weight_decay >= 0.0);
  if (momentum_ > 0.0) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) velocity_.emplace_back(p.param->value.shape());
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(lr_);
  const auto wd = static_cast<float>(weight_decay_);
  const auto mu = static_cast<float>(momentum_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& value = params_[pi].param->value;
    auto& grad = params_[pi].param->grad;
    for (std::size_t i = 0; i < value.numel(); ++i) {
      float g = grad[i] + wd * value[i];
      if (mu > 0.f) {
        float& v = velocity_[pi][i];
        v = mu * v + g;
        g = v;
      }
      value[i] -= lr * g;
    }
    APF_DEBUG_CHECK_FINITE(std::span<const float>(value.data()),
                           "Sgd::step updated parameters");
  }
}

void Sgd::reset_state() {
  for (auto& v : velocity_) v.zero();
}

Adam::Adam(std::vector<nn::ParamRef> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  APF_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  APF_CHECK(beta2 >= 0.0 && beta2 < 1.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(p.param->value.shape());
    v_.emplace_back(p.param->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_);
  const auto wd = static_cast<float>(weight_decay_);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(eps_);
  const auto inv_bias1 = static_cast<float>(1.0 / bias1);
  const auto inv_bias2 = static_cast<float>(1.0 / bias2);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& value = params_[pi].param->value;
    auto& grad = params_[pi].param->grad;
    for (std::size_t i = 0; i < value.numel(); ++i) {
      const float g = grad[i] + wd * value[i];
      float& m = m_[pi][i];
      float& v = v_[pi][i];
      m = b1 * m + (1.f - b1) * g;
      v = b2 * v + (1.f - b2) * g * g;
      const float mhat = m * inv_bias1;
      const float vhat = v * inv_bias2;
      value[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
    APF_DEBUG_CHECK_FINITE(std::span<const float>(value.data()),
                           "Adam::step updated parameters");
  }
}

void Adam::reset_state() {
  t_ = 0;
  for (auto& m : m_) m.zero();
  for (auto& v : v_) v.zero();
}

}  // namespace apf::optim
