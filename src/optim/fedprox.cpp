#include "optim/fedprox.h"

#include "util/error.h"

namespace apf::optim {

void add_proximal_grad(nn::Module& module, std::span<const float> anchor,
                       double mu) {
  APF_CHECK(mu >= 0.0);
  const auto fmu = static_cast<float>(mu);
  std::size_t offset = 0;
  for (auto& p : module.parameters()) {
    auto& value = p.param->value;
    auto& grad = p.param->grad;
    const std::size_t n = value.numel();
    APF_CHECK(offset + n <= anchor.size());
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] += fmu * (value[i] - anchor[offset + i]);
    }
    offset += n;
  }
  APF_CHECK(offset == anchor.size());
}

}  // namespace apf::optim
