// Learning-rate schedules (paper §7.8 uses constant and multiplicative-decay
// schedules; Theorem 2 motivates decaying rates).
#pragma once

#include <cstddef>
#include <memory>

namespace apf::optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use in round/epoch `k` (0-based).
  virtual double lr(std::size_t k) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double lr(std::size_t) const override { return lr_; }

 private:
  double lr_;
};

/// lr(k) = initial * factor^(k / every) — the paper's "multiply by 0.99
/// every 10 epochs" setup (§7.8).
class MultiplicativeDecayLr : public LrSchedule {
 public:
  MultiplicativeDecayLr(double initial, double factor, std::size_t every);
  double lr(std::size_t k) const override;

 private:
  double initial_;
  double factor_;
  std::size_t every_;
};

/// lr(k) = initial / sqrt(k + 1): the O(1/sqrt(T)) rate that satisfies
/// Theorem 2's conditions (eq. 16).
class InverseSqrtLr : public LrSchedule {
 public:
  explicit InverseSqrtLr(double initial) : initial_(initial) {}
  double lr(std::size_t k) const override;

 private:
  double initial_;
};

}  // namespace apf::optim
