#include "optim/lr_schedule.h"

#include <cmath>

#include "util/error.h"

namespace apf::optim {

MultiplicativeDecayLr::MultiplicativeDecayLr(double initial, double factor,
                                             std::size_t every)
    : initial_(initial), factor_(factor), every_(every) {
  APF_CHECK(initial > 0.0);
  APF_CHECK(factor > 0.0 && factor <= 1.0);
  APF_CHECK(every > 0);
}

double MultiplicativeDecayLr::lr(std::size_t k) const {
  return initial_ * std::pow(factor_, static_cast<double>(k / every_));
}

double InverseSqrtLr::lr(std::size_t k) const {
  return initial_ / std::sqrt(static_cast<double>(k + 1));
}

}  // namespace apf::optim
