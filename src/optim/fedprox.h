// FedProx proximal term (Li et al., MLSys'20; paper §7.7).
//
// Under FedProx each client minimizes h_i(x, x_k) = F_i(x) + (mu/2)||x-x_k||^2
// instead of F_i(x). The proximal term contributes mu * (x - x_k) to each
// parameter gradient; clients call add_proximal_grad after every backward
// pass, before the optimizer step.
#pragma once

#include <span>

#include "nn/module.h"

namespace apf::optim {

/// Adds mu * (current - anchor) to every parameter gradient. `anchor` is the
/// flattened global model the round started from (same layout as
/// nn::flatten_params).
void add_proximal_grad(nn::Module& module, std::span<const float> anchor,
                       double mu);

}  // namespace apf::optim
