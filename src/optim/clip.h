// Gradient clipping utilities.
#pragma once

#include "nn/module.h"

namespace apf::optim {

/// Scales all parameter gradients of `module` so their global L2 norm is at
/// most `max_norm`. Returns the pre-clipping norm. Standard guard for
/// recurrent models (exploding gradients through time).
double clip_grad_norm(nn::Module& module, double max_norm);

/// Clamps every gradient coordinate to [-max_value, max_value].
void clip_grad_value(nn::Module& module, double max_value);

}  // namespace apf::optim
