// Optimizer interface over a module's parameters.
//
// The paper trains LeNet-5 with Adam and ResNet-18/LSTM with SGD; both are
// provided. Optimizers hold non-owning references to the parameters, so the
// module must outlive the optimizer.
#pragma once

#include <vector>

#include "nn/module.h"

namespace apf::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::ParamRef> params, double lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  /// Resets internal state (momentum/Adam moments). FL clients call this
  /// when pulling a fresh global model at the start of a round.
  virtual void reset_state() {}

 protected:
  std::vector<nn::ParamRef> params_;
  double lr_;
};

/// SGD with optional momentum and decoupled-from-loss L2 weight decay
/// (decay is added to the gradient, as in torch.optim.SGD).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::ParamRef> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void step() override;
  void reset_state() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with L2 weight decay added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::ParamRef> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void step() override;
  void reset_state() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace apf::optim
