#include "optim/clip.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace apf::optim {

double clip_grad_norm(nn::Module& module, double max_norm) {
  APF_CHECK(max_norm > 0.0);
  double norm_sq = 0.0;
  const auto params = module.parameters();
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.param->numel(); ++i) {
      const double g = p.param->grad[i];
      norm_sq += g * g;
    }
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (const auto& p : params) {
      for (std::size_t i = 0; i < p.param->numel(); ++i) {
        p.param->grad[i] *= scale;
      }
    }
  }
  return norm;
}

void clip_grad_value(nn::Module& module, double max_value) {
  APF_CHECK(max_value > 0.0);
  const auto lo = static_cast<float>(-max_value);
  const auto hi = static_cast<float>(max_value);
  for (const auto& p : module.parameters()) {
    for (std::size_t i = 0; i < p.param->numel(); ++i) {
      p.param->grad[i] = std::clamp(p.param->grad[i], lo, hi);
    }
  }
}

}  // namespace apf::optim
