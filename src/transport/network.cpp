#include "transport/network.h"

#include <cmath>

#include "util/error.h"

namespace apf::transport {

namespace {
double seconds(double bytes, double mbps) {
  APF_CHECK(mbps > 0.0);
  return bytes * 8.0 / (mbps * 1e6);
}
}  // namespace

void NetworkModel::validate(const std::string& context) const {
  const auto require_bandwidth = [&](double mbps, const char* field) {
    APF_CHECK_MSG(std::isfinite(mbps) && mbps > 0.0,
                  context << ": NetworkModel::" << field
                          << " must be a finite positive Mbps value, got "
                          << mbps);
  };
  require_bandwidth(client_download_mbps, "client_download_mbps");
  require_bandwidth(client_upload_mbps, "client_upload_mbps");
  require_bandwidth(server_bandwidth_mbps, "server_bandwidth_mbps");
  APF_CHECK_MSG(
      std::isfinite(frame_latency_seconds) && frame_latency_seconds >= 0.0,
      context << ": NetworkModel::frame_latency_seconds must be finite and "
              << ">= 0, got " << frame_latency_seconds);
}

double NetworkModel::client_download_seconds(double bytes) const {
  APF_CHECK(bytes >= 0.0);
  return seconds(bytes, client_download_mbps);
}

double NetworkModel::client_upload_seconds(double bytes) const {
  APF_CHECK(bytes >= 0.0);
  return seconds(bytes, client_upload_mbps);
}

double NetworkModel::server_seconds(double total_bytes) const {
  APF_CHECK(total_bytes >= 0.0);
  return seconds(total_bytes, server_bandwidth_mbps);
}

}  // namespace apf::transport
