#include "transport/streaming.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace apf::transport {

StreamingAggregator::StreamingAggregator(std::size_t dim) : acc_(dim, 0.0) {}

void StreamingAggregator::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  folded_ = 0;
  last_client_ = util::ClientId(0);
}

void StreamingAggregator::fold(util::ClientId client,
                               std::span<const float> values, double weight) {
  APF_CHECK_MSG(values.size() == acc_.size(),
                "streaming fold payload dim " << values.size()
                                              << " != aggregator dim "
                                              << acc_.size());
  APF_CHECK_MSG(std::isfinite(weight) && weight >= 0.0,
                "streaming fold weight must be finite and >= 0, got "
                    << weight);
  APF_CHECK_MSG(folded_ == 0 || client > last_client_,
                "streaming fold out of order: client "
                    << client << " after client " << last_client_
                    << " (folds must arrive in ascending client id)");
  last_client_ = client;
  ++folded_;
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    acc_[j] += weight * static_cast<double>(values[j]);
  }
}

void StreamingAggregator::finish_weighted(std::span<float> out) const {
  APF_CHECK(out.size() == acc_.size());
  APF_CHECK_MSG(folded_ > 0, "finish_weighted with no folded contributions");
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    out[j] = static_cast<float>(acc_[j]);
  }
}

void StreamingAggregator::finish_mean(std::span<float> out) const {
  APF_CHECK(out.size() == acc_.size());
  APF_CHECK_MSG(folded_ > 0, "finish_mean with no folded contributions");
  const double count = static_cast<double>(folded_);
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    out[j] = static_cast<float>(acc_[j] / count);
  }
}

std::size_t StreamingAggregator::memory_bytes() const {
  return sizeof(*this) + acc_.capacity() * sizeof(double);
}

}  // namespace apf::transport
