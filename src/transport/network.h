// Edge network model.
//
// The paper's testbed gives every client 9 Mbps download / 3 Mbps upload
// (global-average Internet conditions) and the server 10 Gbps. Round time in
// the simulator is the BSP barrier: the slowest client's compute plus its
// two transfers. The server link is shared: with many clients pushing
// simultaneously, the server-side time is total bytes over server bandwidth,
// and the barrier takes whichever side is slower.
//
// The model lives in `transport` so the message bus can price the frames it
// carries; `fl/network.h` re-exports it for existing users of
// `apf::fl::NetworkModel`.
#pragma once

#include <cstddef>
#include <string>

#include "util/ids.h"

namespace apf::transport {

struct NetworkModel {
  double client_download_mbps = 9.0;
  double client_upload_mbps = 3.0;
  double server_bandwidth_mbps = 10000.0;

  /// Fixed per-frame propagation delay in seconds, added once per frame on
  /// top of the serialization time. 0 (the default) reproduces the paper's
  /// bandwidth-only timing exactly.
  double frame_latency_seconds = 0.0;

  /// Validates the configuration up front: every bandwidth must be a finite
  /// positive Mbps value and the latency finite and non-negative. Throws
  /// apf::Error with `context` in the message so a bad config is reported
  /// where it was built, not mid-round deep inside seconds().
  void validate(const std::string& context) const;

  /// Seconds for one client to download `bytes`.
  double client_download_seconds(double bytes) const;

  /// Seconds for one client to upload `bytes`.
  double client_upload_seconds(double bytes) const;

  /// Seconds for the server to move `total_bytes` across its link.
  double server_seconds(double total_bytes) const;

  // Measured-count overloads: the bus prices links in util::ByteCount; the
  // conversion to double happens exactly here (exact for every measured
  // count, see ByteCount::to_double), so pricing arithmetic is bit-identical
  // to the historical double-in-double-out path.
  double client_download_seconds(util::ByteCount bytes) const {
    return client_download_seconds(bytes.to_double());
  }
  double client_upload_seconds(util::ByteCount bytes) const {
    return client_upload_seconds(bytes.to_double());
  }
  double server_seconds(util::ByteCount total_bytes) const {
    return server_seconds(total_bytes.to_double());
  }
};

}  // namespace apf::transport
