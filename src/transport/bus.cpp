#include "transport/bus.h"

#include <algorithm>

#include "util/error.h"

namespace apf::transport {

Bus::Bus(NetworkModel network, std::size_t shard_count)
    : network_(network), links_(shard_count) {
  network_.validate("transport::Bus");
}

void Bus::begin_round(RoundId round) {
  APF_CHECK_MSG(!in_round_, "begin_round while round " << round_
                                                       << " is still open");
  APF_CHECK(round.value() > 0);
  round_ = round;
  in_round_ = true;
  // The per-round peak starts at the bytes still in flight: carried frames
  // were note_queued() at push time and have not been taken yet.
  round_peak_queued_bytes_.store(queued_bytes_.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
  // Re-inject frames a kCarryOver finish left behind. They keep their
  // original round id and seq (staleness bookkeeping depends on both) and
  // are NOT re-charged: bytes and up_frames were counted in the round that
  // pushed them. carried_ is in ascending (client, seq) order, so each
  // link's inbox stays seq-sorted with carried frames ahead of new pushes.
  for (Frame& frame : carried_) {
    LinkState& link = links_.obtain(frame.client);
    if (link.next_seq <= frame.seq) link.next_seq = util::next_seq(frame.seq);
    link.inbox.push_back(std::move(frame));
  }
  carried_.clear();
}

SeqNo Bus::push(ClientId client, Frame::Kind kind,
                std::vector<std::uint8_t> payload) {
  APF_CHECK_MSG(in_round_, "push outside begin_round/finish_round");
  LinkState& link = links_.obtain(client);
  Frame frame;
  frame.client = client;
  frame.round = round_;
  frame.kind = kind;
  frame.seq = link.next_seq;
  link.next_seq = util::next_seq(link.next_seq);
  const SeqNo seq = frame.seq;
  const std::size_t bytes = payload.size();
  frame.payload = std::move(payload);
  link.up_bytes += ByteCount(bytes);
  ++link.up_frames;
  link.inbox.push_back(std::move(frame));
  note_queued(bytes);
  return seq;
}

SeqNo Bus::deliver(ClientId client, Frame::Kind kind,
                   std::vector<std::uint8_t> payload) {
  APF_CHECK_MSG(in_round_, "deliver outside begin_round/finish_round");
  LinkState& link = links_.obtain(client);
  Frame frame;
  frame.client = client;
  frame.round = round_;
  frame.kind = kind;
  frame.seq = link.next_seq;
  link.next_seq = util::next_seq(link.next_seq);
  const SeqNo seq = frame.seq;
  const std::size_t bytes = payload.size();
  frame.payload = std::move(payload);
  link.down_bytes += ByteCount(bytes);
  ++link.down_frames;
  link.mailbox.push_back(std::move(frame));
  note_queued(bytes);
  return seq;
}

std::vector<Frame> Bus::take_pushes() {
  APF_CHECK_MSG(in_round_, "take_pushes outside begin_round/finish_round");
  std::vector<Frame> out;
  links_.for_each_ordered([&](ClientId /*id*/, LinkState& link) {
    for (Frame& frame : link.inbox) {
      note_taken(frame.payload.size());
      out.push_back(std::move(frame));
    }
    link.inbox.clear();
  });
  return out;
}

std::vector<Frame> Bus::take_pushes(ClientId client) {
  APF_CHECK_MSG(in_round_, "take_pushes outside begin_round/finish_round");
  std::vector<Frame> out;
  LinkState* link = links_.find(client);
  if (link == nullptr) return out;
  for (Frame& frame : link->inbox) {
    note_taken(frame.payload.size());
    out.push_back(std::move(frame));
  }
  link->inbox.clear();
  return out;
}

std::vector<Frame> Bus::take_pulls(ClientId client) {
  APF_CHECK_MSG(in_round_, "take_pulls outside begin_round/finish_round");
  std::vector<Frame> out;
  LinkState* link = links_.find(client);
  if (link == nullptr) return out;
  for (Frame& frame : link->mailbox) {
    note_taken(frame.payload.size());
    out.push_back(std::move(frame));
  }
  link->mailbox.clear();
  return out;
}

ByteCount Bus::link_up_bytes(ClientId client) const {
  const LinkState* link = links_.find(client);
  return link == nullptr ? ByteCount(0) : link->up_bytes;
}

ByteCount Bus::link_down_bytes(ClientId client) const {
  const LinkState* link = links_.find(client);
  return link == nullptr ? ByteCount(0) : link->down_bytes;
}

RoundStats Bus::finish_round(FinishPolicy policy) {
  APF_CHECK_MSG(in_round_, "finish_round without begin_round");
  const bool carry = policy == FinishPolicy::kCarryOver;
  RoundStats stats;
  stats.round = round_;
  // Ascending client id: the same order (and therefore the same double
  // addition sequence) the pre-bus runner used, so the totals are
  // bit-identical to the legacy in-memory accounting. (The ByteCount sum is
  // an exact integer; converting it to double once is identical to summing
  // the exactly-representable per-link doubles.)
  links_.for_each_ordered([&](ClientId id, LinkState& link) {
    if (carry) {
      // Straggler pushes outlive the round; their bytes were charged at
      // push time and stay queued until a later round takes them.
      stats.carried_frames += link.inbox.size();
      for (Frame& frame : link.inbox) carried_.push_back(std::move(frame));
      link.inbox.clear();
    } else {
      APF_CHECK_MSG(link.inbox.empty(),
                    "round " << round_ << ": client " << id << " pushed "
                             << link.inbox.size()
                             << " frame(s) the server never took");
    }
    APF_CHECK_MSG(link.mailbox.empty(),
                  "round " << round_ << ": client " << id << " never took "
                           << link.mailbox.size()
                           << " delivered frame(s)");
    stats.total_bytes += link.up_bytes + link.down_bytes;
    stats.frames_up += link.up_frames;
    stats.frames_down += link.down_frames;
    double comm = network_.client_upload_seconds(link.up_bytes) +
                  network_.client_download_seconds(link.down_bytes);
    if (network_.frame_latency_seconds > 0.0) {
      comm += network_.frame_latency_seconds *
              static_cast<double>(link.up_frames + link.down_frames);
    }
    stats.link_comm_seconds.emplace_back(id, comm);
    stats.max_client_comm_seconds =
        std::max(stats.max_client_comm_seconds, comm);
    ++stats.active_links;
  });
  stats.server_seconds = network_.server_seconds(stats.total_bytes);
  in_round_ = false;
  links_.clear();
  return stats;
}

// lint-apf: allow-weak-type(feeds std::atomic counters directly)
void Bus::note_queued(std::size_t bytes) {
  const std::size_t now =
      queued_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_queued_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  std::size_t round_peak =
      round_peak_queued_bytes_.load(std::memory_order_relaxed);
  while (now > round_peak &&
         !round_peak_queued_bytes_.compare_exchange_weak(
             round_peak, now, std::memory_order_relaxed)) {
  }
}

// lint-apf: allow-weak-type(feeds std::atomic counters directly)
void Bus::note_taken(std::size_t bytes) {
  queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace apf::transport
