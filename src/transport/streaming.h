// Streaming aggregation: fold decoded frames one at a time.
//
// The server never stages per-client uploads: each decoded payload folds
// into a double accumulator the moment it arrives, so peak server memory is
// O(model) regardless of fan-in. Determinism comes from fold ORDER, not
// timing — callers must fold in strictly ascending client id (the order the
// bus hands frames over in), which the aggregator enforces, so the result is
// bit-identical for any worker count or arrival schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.h"

namespace apf::transport {

class StreamingAggregator {
 public:
  /// An aggregator over payloads of `dim` scalars (may be 0, e.g. a fully
  /// frozen APF round whose packed payload is empty).
  explicit StreamingAggregator(std::size_t dim);

  /// Forgets all folded contributions; keeps the dimension.
  void reset();

  /// Folds one client's decoded payload: acc[j] += weight * values[j].
  /// `weight` is the client's (already normalized) aggregation weight.
  /// Client ids must be folded in strictly ascending order — that IS the
  /// determinism guarantee, so violations throw.
  void fold(util::ClientId client, std::span<const float> values,
            double weight);

  std::size_t dim() const { return acc_.size(); }
  std::size_t folded() const { return folded_; }
  std::span<const double> accumulated() const { return acc_; }

  /// Writes float(acc[j]) over `out` — the weighted-sum finish used when the
  /// folded weights were pre-normalized. Requires folded() > 0, same contract
  /// as finish_mean: an empty buffer has no aggregate, not an all-zero one.
  void finish_weighted(std::span<float> out) const;

  /// Writes float(acc[j] / folded()) over `out` — the plain-mean finish used
  /// for unweighted folds (weight 1.0 per client). Requires folded() > 0.
  void finish_mean(std::span<float> out) const;

  /// Resident bytes of the accumulator — the O(model) figure the
  /// million-client bench asserts is independent of fan-in.
  std::size_t memory_bytes() const;

 private:
  std::vector<double> acc_;
  std::size_t folded_ = 0;
  util::ClientId last_client_;
};

}  // namespace apf::transport
