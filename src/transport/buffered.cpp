#include "transport/buffered.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace apf::transport {

BufferedAggregator::BufferedAggregator(std::size_t dim, std::size_t capacity)
    : capacity_(capacity), acc_(dim, 0.0) {
  APF_CHECK_MSG(capacity > 0, "BufferedAggregator capacity must be > 0");
  contributions_.reserve(capacity);
}

void BufferedAggregator::begin_round(util::RoundId round) {
  APF_CHECK_MSG(round.value() > 0, "begin_round with round 0");
  APF_CHECK_MSG(!armed_ || round > round_,
                "begin_round " << round << " does not advance past round "
                               << round_);
  round_ = round;
  armed_ = true;
}

double BufferedAggregator::staleness_discount(std::uint64_t staleness) {
  return 1.0 / std::sqrt(1.0 + static_cast<double>(staleness));
}

void BufferedAggregator::fold(util::ClientId client,
                              util::RoundId origin_round,
                              std::span<const float> values, double weight) {
  // Validate EVERYTHING before touching acc_/contributions_/weight_sum_ so a
  // rejected fold is atomic — the fuzz oracle snapshots around this call.
  APF_CHECK_MSG(armed_, "fold before begin_round");
  APF_CHECK_MSG(values.size() == acc_.size(),
                "buffered fold payload dim " << values.size()
                                             << " != aggregator dim "
                                             << acc_.size());
  APF_CHECK_MSG(std::isfinite(weight) && weight >= 0.0,
                "buffered fold weight must be finite and >= 0, got "
                    << weight);
  APF_CHECK_MSG(origin_round.value() > 0 && origin_round <= round_,
                "buffered fold origin round " << origin_round
                                              << " outside [1, " << round_
                                              << "]");
  APF_CHECK_MSG(contributions_.size() < capacity_,
                "buffered fold into a full buffer (capacity " << capacity_
                                                              << ")");
  const std::uint64_t staleness = round_.value() - origin_round.value();
  const double discounted = weight * staleness_discount(staleness);
  BufferedContribution entry;
  entry.client = client;
  entry.origin_round = origin_round;
  entry.staleness = staleness;
  entry.weight = weight;
  contributions_.push_back(entry);
  weight_sum_ += discounted;
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    acc_[j] += discounted * static_cast<double>(values[j]);
  }
}

void BufferedAggregator::commit(std::span<float> out) {
  APF_CHECK(out.size() == acc_.size());
  APF_CHECK_MSG(!contributions_.empty(),
                "commit with no buffered contributions");
  APF_CHECK_MSG(weight_sum_ > 0.0,
                "commit with non-positive discounted weight sum "
                    << weight_sum_);
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    out[j] = static_cast<float>(acc_[j] / weight_sum_);
  }
  std::fill(acc_.begin(), acc_.end(), 0.0);
  contributions_.clear();
  weight_sum_ = 0.0;
}

std::size_t BufferedAggregator::memory_bytes() const {
  return sizeof(*this) + acc_.capacity() * sizeof(double) +
         contributions_.capacity() * sizeof(BufferedContribution);
}

}  // namespace apf::transport
