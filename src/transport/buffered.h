// Buffered asynchronous aggregation: fold pushes in ARRIVAL order behind a
// bounded buffer (FedBuff-style).
//
// Unlike StreamingAggregator — whose determinism contract is "fold in
// strictly ascending client id" — a BufferedAggregator accepts folds in any
// client order: asynchronous pushes arrive whenever their client finishes,
// and the caller's (deterministic, simulated) arrival schedule IS the fold
// order. Each contribution carries the round its push was encoded in; the
// aggregator measures staleness against the round armed by begin_round()
// and discounts the contribution's weight by 1/sqrt(1 + staleness), the
// standard FedBuff polynomial discount. Memory is O(model) for the
// accumulator plus O(capacity) for the per-contribution side table.
//
// The buffer is bounded: at most `capacity` contributions may be buffered
// at once, and the caller commits (weighted average, then reset) once its
// goal-K is reached or its straggler timeout fires. Folding into a full
// buffer throws; fold() validates every input before mutating any state, so
// a rejected fold leaves the aggregator untouched (the same atomic-rejection
// contract the fuzz oracle pins for every other stateful surface).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.h"

namespace apf::transport {

/// Book-keeping for one folded contribution (the O(capacity) side table).
struct BufferedContribution {
  util::ClientId client;
  util::RoundId origin_round;  // round the push was encoded in
  std::uint64_t staleness = 0;  // commit round minus origin round
  double weight = 0.0;          // raw caller weight, before the discount
};

class BufferedAggregator {
 public:
  /// An aggregator over payloads of `dim` scalars holding at most
  /// `capacity` contributions between commits. capacity must be > 0.
  BufferedAggregator(std::size_t dim, std::size_t capacity);

  /// Arms the aggregator for round `round` (1-based); staleness of every
  /// subsequent fold is measured against it. Carries the buffer over: any
  /// contribution folded but not yet committed stays buffered.
  void begin_round(util::RoundId round);

  /// Folds one contribution: acc[j] += discount * weight * values[j] where
  /// discount = staleness_discount(round - origin_round). Any client order
  /// is accepted; determinism is the caller's arrival schedule. Throws
  /// (leaving all state untouched) when the dimension mismatches, the
  /// weight is non-finite or negative, origin_round is 0 or ahead of the
  /// armed round, or the buffer is full.
  void fold(util::ClientId client, util::RoundId origin_round,
            std::span<const float> values, double weight);

  /// Writes float(acc[j] / sum of discounted weights) over `out`, then
  /// resets the buffer (the armed round is kept). Requires buffered() > 0
  /// and a positive discounted weight sum.
  void commit(std::span<float> out);

  /// FedBuff polynomial staleness discount: 1 / sqrt(1 + staleness).
  static double staleness_discount(std::uint64_t staleness);

  std::size_t dim() const { return acc_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t buffered() const { return contributions_.size(); }
  bool full() const { return contributions_.size() == capacity_; }
  util::RoundId round() const { return round_; }
  /// Sum of discounted weights currently buffered.
  double weight_sum() const { return weight_sum_; }
  std::span<const double> accumulated() const { return acc_; }
  /// Folded-but-uncommitted contributions, in fold (arrival) order.
  const std::vector<BufferedContribution>& contributions() const {
    return contributions_;
  }

  /// Resident bytes: O(model) accumulator + O(capacity) side table.
  std::size_t memory_bytes() const;

 private:
  std::size_t capacity_;
  std::vector<double> acc_;
  std::vector<BufferedContribution> contributions_;
  double weight_sum_ = 0.0;
  util::RoundId round_;
  bool armed_ = false;
};

}  // namespace apf::transport
