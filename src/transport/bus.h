// In-process message bus: per-link framed channels between clients and the
// server, priced by NetworkModel.
//
// One Bus instance models the star topology of a federated round: every
// client has its own link, a push travels client -> server and a delivery
// travels server -> client. Payloads are the REAL encoded wire buffers
// (docs/WIRE.md); the bus counts their measured sizes and never models a
// byte. Lifecycle per round (docs/TRANSPORT.md):
//
//   begin_round(r)
//     clients:  push(id, kind, payload)          [concurrent, distinct links]
//     server:   take_pushes() -> frames sorted by (client, seq)
//     server:   deliver(id, kind, payload)
//     clients:  take_pulls(id) -> that link's frames in send order
//   finish_round() -> RoundStats
//
// finish_round() checks every frame was consumed (an undelivered frame is a
// routing bug, not traffic), prices each link with the legacy per-round
// arithmetic — upload_seconds(sum of up bytes) + download_seconds(sum of
// down bytes), plus frame_latency_seconds per frame when configured — and
// resets the per-round link state, so bus memory is O(links active this
// round), not O(client universe).
//
// Asynchronous rounds relax exactly one clause: finish_round(kCarryOver)
// lets untaken server-bound pushes (stragglers that missed the commit)
// carry into the next round instead of throwing — see FinishPolicy.
//
// All identifiers crossing this interface are strong types (util/ids.h):
// links are ClientId, rounds RoundId, send order SeqNo, and every byte
// figure a ByteCount, so transposed arguments fail to compile.
//
// Thread safety: push/deliver/take_pulls may run concurrently for DISTINCT
// clients (per-link state lives in a ShardedClientStore; see its contract);
// a single link has a single logical owner on each side. begin_round /
// take_pushes / finish_round belong to the server coordinator thread and
// must not overlap client calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "transport/client_store.h"
#include "transport/frame.h"
#include "transport/network.h"

namespace apf::transport {

/// What finish_round() does with a frame nobody consumed.
enum class FinishPolicy : std::uint8_t {
  /// Synchronous contract: every frame must have been taken; an untaken
  /// frame is a routing bug and throws.
  kStrict = 0,
  /// Asynchronous contract: untaken SERVER-BOUND pushes are straggler
  /// frames — they carry into the next round (original round id and seq
  /// preserved, bytes charged once at push time, never re-charged) and
  /// reappear in that round's inbox ahead of new pushes. Untaken
  /// client-bound deliveries are still a routing bug in either policy:
  /// the server chooses when to deliver, so it has no excuse.
  kCarryOver = 1,
};

/// Measured traffic of one round, priced by the NetworkModel.
struct RoundStats {
  RoundId round;
  std::size_t active_links = 0;  // links that carried at least one frame
  std::uint64_t frames_up = 0;
  std::uint64_t frames_down = 0;
  /// Server-bound frames left untaken and carried into the next round
  /// (always 0 under FinishPolicy::kStrict).
  std::uint64_t carried_frames = 0;
  ByteCount total_bytes;  // up + down across all links
  /// BSP barrier: the slowest link's upload + download time.
  double max_client_comm_seconds = 0.0;
  /// Time for the shared server link to carry total_bytes.
  double server_seconds = 0.0;
  /// Per-link comm seconds (upload + download + per-frame latency), in
  /// ascending client id order — what a completion-time round model needs
  /// to pair each client's comm with its own compute.
  std::vector<std::pair<ClientId, double>> link_comm_seconds;
};

class Bus {
 public:
  explicit Bus(NetworkModel network, std::size_t shard_count = 16);

  const NetworkModel& network() const { return network_; }

  /// Arms the bus for round `round` (1-based).
  void begin_round(RoundId round);

  /// Client -> server. The payload must be a real encoded wire buffer; its
  /// size is the charge. Returns the frame's per-link sequence number.
  SeqNo push(ClientId client, Frame::Kind kind,
             std::vector<std::uint8_t> payload);

  /// Server -> client. Same contract as push(), opposite direction.
  SeqNo deliver(ClientId client, Frame::Kind kind,
                std::vector<std::uint8_t> payload);

  /// Server receive: drains every arrived push, sorted by (client id, send
  /// sequence) — the deterministic fold order for streaming aggregation.
  std::vector<Frame> take_pushes();

  /// Server receive, one link: drains only `client`'s inbox in send order
  /// (empty if the link is untouched). The asynchronous server uses this to
  /// take pushes in ARRIVAL order — its own deterministic schedule — while
  /// leaving straggler frames queued for carry-over.
  std::vector<Frame> take_pushes(ClientId client);

  /// Client receive: drains `client`'s mailbox in send order.
  std::vector<Frame> take_pulls(ClientId client);

  /// Per-link byte counters for the round in flight (0 for untouched links).
  ByteCount link_up_bytes(ClientId client) const;
  ByteCount link_down_bytes(ClientId client) const;

  /// Payload bytes currently queued (pushed or delivered, not yet taken).
  ByteCount queued_bytes() const {
    return ByteCount(queued_bytes_.load(std::memory_order_relaxed));
  }

  /// High-water mark of queued_bytes() since construction (never reset).
  ByteCount peak_queued_bytes() const {
    return ByteCount(peak_queued_bytes_.load(std::memory_order_relaxed));
  }

  /// High-water mark of queued_bytes() since the last begin_round() — the
  /// figure per-round windowing bounds (e.g. the million-client bench's
  /// one-encode-window assertion) must use; the lifetime peak above only
  /// ever ratchets up. begin_round() resets it to the bytes still in flight
  /// (carried frames), not to zero.
  ByteCount round_peak_queued_bytes() const {
    return ByteCount(round_peak_queued_bytes_.load(std::memory_order_relaxed));
  }

  /// Closes the round under `policy` (see FinishPolicy). Prices each link in
  /// ascending client id order and resets all per-round link state; carried
  /// pushes (kCarryOver only) re-enter their links at the next begin_round().
  RoundStats finish_round(FinishPolicy policy = FinishPolicy::kStrict);

 private:
  struct LinkState {
    SeqNo next_seq;
    ByteCount up_bytes;
    ByteCount down_bytes;
    std::uint64_t up_frames = 0;
    std::uint64_t down_frames = 0;
    std::vector<Frame> inbox;    // server-bound, awaiting take_pushes()
    std::vector<Frame> mailbox;  // client-bound, awaiting take_pulls()
  };

  // Private plumbing into the std::atomic counters below; the public
  // surface exposes ByteCount accessors (queued_bytes/peak_queued_bytes).
  // lint-apf: allow-weak-type(feeds std::atomic counters directly)
  void note_queued(std::size_t bytes);
  void note_taken(std::size_t bytes);  // lint-apf: allow-weak-type(as above)

  NetworkModel network_;
  // Round lifecycle state; owned by the server coordinator thread (see the
  // header comment), so it needs no lock.
  RoundId round_;
  bool in_round_ = false;
  ShardedClientStore<LinkState> links_;
  // Server-bound frames a kCarryOver finish left untaken, in ascending
  // (client, seq) order; re-injected into their links by the next
  // begin_round(). Their bytes stay in queued_bytes_ the whole time.
  std::vector<Frame> carried_;
  std::atomic<std::size_t> queued_bytes_{0};
  std::atomic<std::size_t> peak_queued_bytes_{0};
  std::atomic<std::size_t> round_peak_queued_bytes_{0};
};

}  // namespace apf::transport
