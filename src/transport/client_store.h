// Sharded per-client state store.
//
// A million-client round must not allocate per-client state for clients that
// never participate: entries here are created lazily on first touch and keyed
// by util::ClientId, so memory is O(clients ever touched), not O(client
// universe).
// The id space is hashed over a fixed set of shards, each guarded by its own
// mutex, so concurrent lanes touching different clients rarely contend.
//
// Concurrency contract: obtain()/find() serialize only the map operation.
// The returned reference is stable until clear() (std::map nodes do not
// move), and DISTINCT clients may be used concurrently, but callers must not
// mutate the SAME client's entry from two threads — per-link state has a
// single owner by construction (one logical sender per link).
//
// Iteration (sorted_ids / for_each_ordered) visits entries in ascending
// client id, which is the deterministic fold order the streaming aggregation
// layer relies on (docs/TRANSPORT.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/ids.h"
#include "util/error.h"
#include "util/rng.h"

namespace apf::transport {

template <typename T>
class ShardedClientStore {
 public:
  explicit ShardedClientStore(std::size_t shard_count = 16) {
    APF_CHECK(shard_count > 0);
    shards_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Returns the entry for `client`, default-constructing it if absent.
  /// The reference stays valid until clear().
  T& obtain(util::ClientId client) {
    Shard& shard = shard_for(client);
    util::MutexLock lock(shard.mu);
    return shard.entries[client];
  }

  /// Returns the entry for `client`, or nullptr if it was never touched.
  T* find(util::ClientId client) {
    Shard& shard = shard_for(client);
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(client);
    return it == shard.entries.end() ? nullptr : &it->second;
  }

  const T* find(util::ClientId client) const {
    const Shard& shard = shard_for(client);
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(client);
    return it == shard.entries.end() ? nullptr : &it->second;
  }

  /// Total entries across all shards.
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      total += shard->entries.size();
    }
    return total;
  }

  /// Every touched client id, ascending.
  std::vector<util::ClientId> sorted_ids() const {
    std::vector<util::ClientId> ids;
    ids.reserve(size());
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (const auto& [id, entry] : shard->entries) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Visits every entry in ascending client id order. `fn(id, entry)` runs
  /// without the shard lock held (the reference is stable); must not be
  /// interleaved with concurrent obtain()/clear().
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    for (const util::ClientId id : sorted_ids()) {
      T* entry = find(id);
      if (entry != nullptr) fn(id, *entry);
    }
  }

  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    for (const util::ClientId id : sorted_ids()) {
      const T* entry = find(id);
      if (entry != nullptr) fn(id, *entry);
    }
  }

  /// Drops every entry (all outstanding references become dangling).
  void clear() {
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      shard->entries.clear();
    }
  }

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::map<util::ClientId, T> entries APF_GUARDED_BY(mu);
  };

  Shard& shard_for(util::ClientId client) {
    std::uint64_t state = client.value();
    return *shards_[splitmix64(state) % shards_.size()];
  }
  const Shard& shard_for(util::ClientId client) const {
    std::uint64_t state = client.value();
    return *shards_[splitmix64(state) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace apf::transport
