// A framed message on the transport bus.
//
// A frame is the unit the bus carries in either direction: an opaque encoded
// wire buffer (APS1/APM1/APQ1/... — see docs/WIRE.md) tagged with the link it
// travels on, the round it belongs to, and a per-link send sequence number.
// The bus never inspects payloads; byte accounting is always the measured
// payload size, never a modeled estimate.
//
// The tags are strong types (src/util/ids.h): a ClientId cannot be passed
// where a RoundId or SeqNo is expected, and size_bytes() is a ByteCount, so
// the id/byte mix-ups that bare integers allowed are now compile errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace apf::transport {

using util::ByteCount;
using util::ClientId;
using util::RoundId;
using util::SeqNo;

struct Frame {
  /// What the payload carries. The bus treats both identically; the tag lets
  /// the receiver dispatch without sniffing the wire magic. Dispatch over
  /// Kind must be exhaustive and default-free (apf_ast_lint.py rule
  /// `exhaustive-dispatch`), so adding an enumerator breaks every switch
  /// that has not decided what to do with it.
  enum class Kind : std::uint8_t {
    kStrategy = 0,   // a SyncStrategy push/pull payload
    kAuxiliary = 1,  // auxiliary state (e.g. BatchNorm buffer vectors)
  };

  ClientId client;  // the link this frame travels on
  RoundId round;    // 1-based communication round
  Kind kind = Kind::kStrategy;
  SeqNo seq;        // per-link send order, assigned by the bus
  std::vector<std::uint8_t> payload;

  ByteCount size_bytes() const { return ByteCount(payload.size()); }
};

}  // namespace apf::transport
