// A framed message on the transport bus.
//
// A frame is the unit the bus carries in either direction: an opaque encoded
// wire buffer (APS1/APM1/APQ1/... — see docs/WIRE.md) tagged with the link it
// travels on, the round it belongs to, and a per-link send sequence number.
// The bus never inspects payloads; byte accounting is always the measured
// payload size, never a modeled estimate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apf::transport {

struct Frame {
  /// What the payload carries. The bus treats both identically; the tag lets
  /// the receiver dispatch without sniffing the wire magic.
  enum class Kind : std::uint8_t {
    kStrategy = 0,   // a SyncStrategy push/pull payload
    kAuxiliary = 1,  // auxiliary state (e.g. BatchNorm buffer vectors)
  };

  std::uint64_t client = 0;  // the link (client id) this frame travels on
  std::uint32_t round = 0;   // 1-based communication round
  Kind kind = Kind::kStrategy;
  std::uint64_t seq = 0;     // per-link send order, assigned by the bus
  std::vector<std::uint8_t> payload;

  std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace apf::transport
