// Synthetic multi-class image dataset (CIFAR-10 stand-in).
//
// Each class has a smooth random prototype image; a sample is its class
// prototype, randomly translated, scaled by a per-sample amplitude jitter,
// plus i.i.d. pixel noise. The task is learnable but not trivially separable,
// and models trained on it show the transient -> stationary parameter
// dynamics APF exploits. Train/test splits share prototypes (derived from
// spec.seed) but use independent sample noise (split_seed).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace apf::data {

struct SyntheticImageSpec {
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t image_size = 16;
  double noise_stddev = 0.6;      // pixel noise relative to unit prototypes
  double amplitude_jitter = 0.2;  // per-sample scale jitter
  std::size_t max_shift = 2;      // circular translation range (pixels)
  /// Fraction of samples whose label is replaced by a uniformly random
  /// class. Keeps the training-loss floor positive so gradient noise
  /// persists after convergence (used to reproduce the over-parameterized
  /// random-walk regime of the paper's Fig. 9).
  double label_noise = 0.0;
  std::uint64_t seed = 42;        // determines class prototypes
};

class SyntheticImageDataset : public Dataset {
 public:
  /// Builds `num_samples` samples with balanced class counts.
  SyntheticImageDataset(const SyntheticImageSpec& spec,
                        std::size_t num_samples, std::uint64_t split_seed);

  std::size_t size() const override { return labels_.size(); }
  std::size_t num_classes() const override { return spec_.num_classes; }
  Shape sample_shape() const override;
  std::size_t label(std::size_t i) const override;
  Batch get_batch(std::span<const std::size_t> indices) const override;

  const SyntheticImageSpec& spec() const { return spec_; }

 private:
  SyntheticImageSpec spec_;
  std::size_t sample_elems_ = 0;
  std::vector<float> pixels_;  // num_samples * sample_elems_
  std::vector<std::size_t> labels_;
};

}  // namespace apf::data
