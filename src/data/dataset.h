// Dataset abstraction for the FL simulator.
//
// A Dataset owns samples (features + integer label) and materializes batches
// as tensors. The two concrete datasets are synthetic stand-ins for CIFAR-10
// and the Keyword-Spotting corpus used in the paper (see DESIGN.md §1 for the
// substitution rationale).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace apf::data {

/// A mini-batch: stacked inputs (leading dim = batch) and labels.
struct Batch {
  Tensor inputs;
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;
  virtual std::size_t num_classes() const = 0;

  /// Per-sample input shape (without the batch dimension).
  virtual Shape sample_shape() const = 0;

  /// Label of sample i.
  virtual std::size_t label(std::size_t i) const = 0;

  /// Stacks the given samples into a batch.
  virtual Batch get_batch(std::span<const std::size_t> indices) const = 0;

  /// All labels, in index order (used by partitioners).
  std::vector<std::size_t> all_labels() const;

  /// Batch of every sample; convenient for small evaluation sets.
  Batch full_batch() const;
};

}  // namespace apf::data
