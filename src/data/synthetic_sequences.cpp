#include "data/synthetic_sequences.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace apf::data {

SyntheticSequenceDataset::SyntheticSequenceDataset(
    const SyntheticSequenceSpec& spec, std::size_t num_samples,
    std::uint64_t split_seed)
    : spec_(spec) {
  APF_CHECK(spec.num_classes >= 2);
  APF_CHECK(spec.time_steps >= 2 && spec.features >= 1);
  sample_elems_ = spec.time_steps * spec.features;

  // Per-class signatures derived from spec.seed only.
  struct Signature {
    std::vector<double> freq, amp, phase;
  };
  Rng sig_rng(spec.seed);
  std::vector<Signature> sigs(spec.num_classes);
  for (auto& sig : sigs) {
    sig.freq.resize(spec.features);
    sig.amp.resize(spec.features);
    sig.phase.resize(spec.features);
    for (std::size_t f = 0; f < spec.features; ++f) {
      sig.freq[f] = sig_rng.uniform(0.5, 3.0);
      sig.amp[f] = sig_rng.uniform(0.4, 1.2);
      sig.phase[f] = sig_rng.uniform(0.0, 2.0 * std::numbers::pi);
    }
  }

  Rng rng(split_seed ^ 0x5EEDFACE12345678ULL);
  values_.resize(num_samples * sample_elems_);
  labels_.resize(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const std::size_t cls = i % spec.num_classes;
    labels_[i] = cls;
    const auto& sig = sigs[cls];
    const double jitter = rng.uniform(-0.5, 0.5);
    float* out = values_.data() + i * sample_elems_;
    for (std::size_t t = 0; t < spec.time_steps; ++t) {
      const double phase_t =
          2.0 * std::numbers::pi * static_cast<double>(t) /
          static_cast<double>(spec.time_steps);
      for (std::size_t f = 0; f < spec.features; ++f) {
        const double clean =
            sig.amp[f] * std::sin(sig.freq[f] * phase_t + sig.phase[f] + jitter);
        out[t * spec.features + f] = static_cast<float>(
            clean + rng.normal(0.0, spec.noise_stddev));
      }
    }
  }
}

Shape SyntheticSequenceDataset::sample_shape() const {
  return {spec_.time_steps, spec_.features};
}

std::size_t SyntheticSequenceDataset::label(std::size_t i) const {
  APF_CHECK(i < labels_.size());
  return labels_[i];
}

Batch SyntheticSequenceDataset::get_batch(
    std::span<const std::size_t> indices) const {
  Batch batch;
  batch.inputs =
      Tensor({indices.size(), spec_.time_steps, spec_.features});
  batch.labels.resize(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    APF_CHECK(i < labels_.size());
    std::copy(values_.begin() + static_cast<std::ptrdiff_t>(i * sample_elems_),
              values_.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * sample_elems_),
              batch.inputs.raw() + b * sample_elems_);
    batch.labels[b] = labels_[i];
  }
  return batch;
}

}  // namespace apf::data
