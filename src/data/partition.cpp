#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace apf::data {

Partition iid_partition(std::size_t num_samples, std::size_t num_clients,
                        Rng& rng) {
  APF_CHECK(num_clients > 0);
  APF_CHECK(num_samples >= num_clients);
  std::vector<std::size_t> idx(num_samples);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  Partition out(num_clients);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    out[i % num_clients].push_back(idx[i]);
  }
  return out;
}

Partition dirichlet_partition(const std::vector<std::size_t>& labels,
                              std::size_t num_classes,
                              std::size_t num_clients, double alpha,
                              Rng& rng) {
  APF_CHECK(num_clients > 0 && num_classes > 0 && alpha > 0.0);
  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    APF_CHECK(labels[i] < num_classes);
    by_class[labels[i]].push_back(i);
  }
  Partition out(num_clients);
  for (std::size_t c = 0; c < num_classes; ++c) {
    auto& pool = by_class[c];
    if (pool.empty()) continue;
    rng.shuffle(pool);
    const std::vector<double> props = rng.dirichlet(alpha, num_clients);
    // Convert proportions to cumulative cut points over the class pool.
    std::size_t start = 0;
    double cum = 0.0;
    for (std::size_t k = 0; k < num_clients; ++k) {
      cum += props[k];
      const auto end = (k + 1 == num_clients)
                           ? pool.size()
                           : std::min(pool.size(),
                                      static_cast<std::size_t>(
                                          cum * static_cast<double>(
                                                    pool.size()) +
                                          0.5));
      for (std::size_t i = start; i < end; ++i) out[k].push_back(pool[i]);
      start = std::max(start, end);
    }
  }
  // Guarantee every client has at least one sample by stealing from the
  // largest client (keeps the simulator's per-client loops well-defined).
  for (std::size_t k = 0; k < num_clients; ++k) {
    if (!out[k].empty()) continue;
    auto largest = std::max_element(
        out.begin(), out.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    APF_CHECK(largest->size() >= 2);
    out[k].push_back(largest->back());
    largest->pop_back();
  }
  return out;
}

Partition classes_per_client_partition(const std::vector<std::size_t>& labels,
                                       std::size_t num_classes,
                                       std::size_t num_clients,
                                       std::size_t classes_per_client,
                                       Rng& rng) {
  APF_CHECK(num_clients > 0 && classes_per_client >= 1);
  APF_CHECK(classes_per_client <= num_classes);
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    APF_CHECK(labels[i] < num_classes);
    by_class[labels[i]].push_back(i);
  }
  for (auto& pool : by_class) rng.shuffle(pool);

  // Assign class slots round-robin so each class is owned by roughly the
  // same number of clients (e.g. 5 clients x 2 classes over 10 classes
  // gives each class exactly one owner, matching the paper's §7.3 setup).
  std::vector<std::vector<std::size_t>> owners(num_classes);
  std::size_t next_class = 0;
  for (std::size_t k = 0; k < num_clients; ++k) {
    for (std::size_t s = 0; s < classes_per_client; ++s) {
      owners[next_class].push_back(k);
      next_class = (next_class + 1) % num_classes;
    }
  }
  Partition out(num_clients);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const auto& own = owners[c];
    if (own.empty()) continue;
    const auto& pool = by_class[c];
    for (std::size_t i = 0; i < pool.size(); ++i) {
      out[own[i % own.size()]].push_back(pool[i]);
    }
  }
  return out;
}

std::vector<std::size_t> classes_held(const Partition& partition,
                                      const std::vector<std::size_t>& labels,
                                      std::size_t num_classes) {
  std::vector<std::size_t> out;
  out.reserve(partition.size());
  for (const auto& client : partition) {
    std::vector<bool> seen(num_classes, false);
    for (std::size_t i : client) {
      APF_CHECK(i < labels.size());
      seen[labels[i]] = true;
    }
    out.push_back(static_cast<std::size_t>(
        std::count(seen.begin(), seen.end(), true)));
  }
  return out;
}

}  // namespace apf::data
