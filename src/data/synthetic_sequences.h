// Synthetic sequence dataset (Keyword-Spotting stand-in).
//
// Each class has a characteristic multi-channel oscillation (per-feature
// frequency, amplitude and phase); a sample adds per-sample phase jitter and
// observation noise. The temporal structure forces the LSTM to integrate
// across time steps, exercising the recurrent code path end to end.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace apf::data {

struct SyntheticSequenceSpec {
  std::size_t num_classes = 10;
  std::size_t time_steps = 16;
  std::size_t features = 8;
  double noise_stddev = 0.4;
  std::uint64_t seed = 7;  // determines class signatures
};

class SyntheticSequenceDataset : public Dataset {
 public:
  SyntheticSequenceDataset(const SyntheticSequenceSpec& spec,
                           std::size_t num_samples, std::uint64_t split_seed);

  std::size_t size() const override { return labels_.size(); }
  std::size_t num_classes() const override { return spec_.num_classes; }
  Shape sample_shape() const override;
  std::size_t label(std::size_t i) const override;
  Batch get_batch(std::span<const std::size_t> indices) const override;

  const SyntheticSequenceSpec& spec() const { return spec_; }

 private:
  SyntheticSequenceSpec spec_;
  std::size_t sample_elems_ = 0;
  std::vector<float> values_;
  std::vector<std::size_t> labels_;
};

}  // namespace apf::data
