#include "data/dataset.h"

#include <numeric>

namespace apf::data {

std::vector<std::size_t> Dataset::all_labels() const {
  std::vector<std::size_t> labels(size());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = label(i);
  return labels;
}

Batch Dataset::full_batch() const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return get_batch(idx);
}

}  // namespace apf::data
