#include "data/synthetic_images.h"

#include <cmath>

#include "util/error.h"

namespace apf::data {

namespace {

/// One in-place 3x3 box blur over a CxHxW image (circular boundary).
void box_blur(std::vector<float>& img, std::size_t c, std::size_t h,
              std::size_t w) {
  std::vector<float> out(img.size());
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float* in = img.data() + ch * h * w;
    float* o = out.data() + ch * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const std::size_t yy = (y + h + static_cast<std::size_t>(dy + 1) - 1) % h;
            const std::size_t xx = (x + w + static_cast<std::size_t>(dx + 1) - 1) % w;
            acc += in[yy * w + xx];
          }
        }
        o[y * w + x] = static_cast<float>(acc / 9.0);
      }
    }
  }
  img = std::move(out);
}

/// Normalizes an image to zero mean / unit RMS.
void normalize(std::vector<float>& img) {
  double sum = 0.0, sq = 0.0;
  for (float v : img) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(img.size());
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  const float inv =
      var > 1e-12 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.f;
  for (auto& v : img) v = (v - static_cast<float>(mean)) * inv;
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(const SyntheticImageSpec& spec,
                                             std::size_t num_samples,
                                             std::uint64_t split_seed)
    : spec_(spec) {
  APF_CHECK(spec.num_classes >= 2);
  APF_CHECK(spec.image_size >= 4);
  const std::size_t c = spec.channels, hw = spec.image_size;
  sample_elems_ = c * hw * hw;

  // Class prototypes depend only on spec.seed so train/test splits agree.
  Rng proto_rng(spec.seed);
  std::vector<std::vector<float>> prototypes(spec.num_classes);
  for (auto& proto : prototypes) {
    proto.resize(sample_elems_);
    for (auto& v : proto) v = static_cast<float>(proto_rng.normal());
    box_blur(proto, c, hw, hw);
    box_blur(proto, c, hw, hw);
    normalize(proto);
  }

  Rng rng(split_seed ^ 0xA5A5A5A5DEADBEEFULL);
  pixels_.resize(num_samples * sample_elems_);
  labels_.resize(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const std::size_t cls = i % spec.num_classes;
    labels_[i] = cls;
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise)) {
      labels_[i] = rng.uniform_int(std::uint64_t{spec.num_classes});
    }
    const auto& proto = prototypes[cls];
    const float amp = static_cast<float>(
        1.0 + rng.normal(0.0, spec.amplitude_jitter));
    const std::size_t max_s = spec.max_shift;
    const std::size_t dy =
        max_s ? static_cast<std::size_t>(rng.uniform_int(2 * max_s + 1)) : 0;
    const std::size_t dx =
        max_s ? static_cast<std::size_t>(rng.uniform_int(2 * max_s + 1)) : 0;
    float* out = pixels_.data() + i * sample_elems_;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < hw; ++y) {
        for (std::size_t x = 0; x < hw; ++x) {
          const std::size_t sy = (y + dy) % hw;
          const std::size_t sx = (x + dx) % hw;
          const float noise =
              static_cast<float>(rng.normal(0.0, spec.noise_stddev));
          out[(ch * hw + y) * hw + x] =
              amp * proto[(ch * hw + sy) * hw + sx] + noise;
        }
      }
    }
  }
}

Shape SyntheticImageDataset::sample_shape() const {
  return {spec_.channels, spec_.image_size, spec_.image_size};
}

std::size_t SyntheticImageDataset::label(std::size_t i) const {
  APF_CHECK(i < labels_.size());
  return labels_[i];
}

Batch SyntheticImageDataset::get_batch(
    std::span<const std::size_t> indices) const {
  Batch batch;
  batch.inputs = Tensor({indices.size(), spec_.channels, spec_.image_size,
                         spec_.image_size});
  batch.labels.resize(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    APF_CHECK(i < labels_.size());
    std::copy(pixels_.begin() + static_cast<std::ptrdiff_t>(i * sample_elems_),
              pixels_.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * sample_elems_),
              batch.inputs.raw() + b * sample_elems_);
    batch.labels[b] = labels_[i];
  }
  return batch;
}

}  // namespace apf::data
