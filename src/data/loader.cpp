#include "data/loader.h"

#include "util/error.h"

namespace apf::data {

DataLoader::DataLoader(const Dataset& dataset,
                       std::vector<std::size_t> indices,
                       std::size_t batch_size, Rng rng)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(rng) {
  APF_CHECK(!indices_.empty());
  APF_CHECK(batch_size_ > 0);
  rng_.shuffle(indices_);
}

Batch DataLoader::next_batch() {
  std::vector<std::size_t> batch_idx;
  batch_idx.reserve(std::min(batch_size_, indices_.size()));
  while (batch_idx.size() < batch_size_) {
    if (cursor_ >= indices_.size()) {
      cursor_ = 0;
      rng_.shuffle(indices_);
      // If the subset is smaller than a batch we still stop at one pass, so
      // a tiny client contributes each sample once per batch.
      if (!batch_idx.empty() && indices_.size() < batch_size_) break;
    }
    batch_idx.push_back(indices_[cursor_++]);
    if (batch_idx.size() == indices_.size() &&
        indices_.size() < batch_size_) {
      break;
    }
  }
  return dataset_.get_batch(batch_idx);
}

std::size_t DataLoader::batches_per_epoch() const {
  return (indices_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace apf::data
