// Client data partitioners for federated setups.
//
// The paper synthesizes non-IID data by drawing each client's class mixture
// from a Dirichlet distribution (α → ∞ is IID; the paper uses α = 1), and a
// pathological "k distinct classes per client" split for §7.3's extreme
// non-IID experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace apf::data {

/// Per-client index lists into a dataset.
using Partition = std::vector<std::vector<std::size_t>>;

/// Shuffles indices and deals them round-robin (IID).
Partition iid_partition(std::size_t num_samples, std::size_t num_clients,
                        Rng& rng);

/// Dirichlet(α) partition: for each class, splits its samples across clients
/// with proportions drawn from Dirichlet(α, ..., α). Every client is
/// guaranteed at least one sample.
Partition dirichlet_partition(const std::vector<std::size_t>& labels,
                              std::size_t num_classes,
                              std::size_t num_clients, double alpha, Rng& rng);

/// Pathological split: each client holds exactly `classes_per_client`
/// distinct classes (assigned round-robin); samples of a class are divided
/// evenly among the clients that own it.
Partition classes_per_client_partition(const std::vector<std::size_t>& labels,
                                       std::size_t num_classes,
                                       std::size_t num_clients,
                                       std::size_t classes_per_client,
                                       Rng& rng);

/// Number of distinct classes present on each client (diagnostics/tests).
std::vector<std::size_t> classes_held(const Partition& partition,
                                      const std::vector<std::size_t>& labels,
                                      std::size_t num_classes);

}  // namespace apf::data
