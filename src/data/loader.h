// Mini-batch loader over a subset of a dataset.
//
// Each FL client owns a DataLoader over its partition indices; next_batch()
// cycles through the local data, reshuffling at each epoch boundary.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace apf::data {

class DataLoader {
 public:
  /// `indices` selects this loader's subset of `dataset`. The dataset must
  /// outlive the loader.
  DataLoader(const Dataset& dataset, std::vector<std::size_t> indices,
             std::size_t batch_size, Rng rng);

  /// Next mini-batch (at most batch_size samples; wraps and reshuffles at
  /// epoch boundaries, so every batch has exactly batch_size samples when
  /// the subset is at least that large).
  Batch next_batch();

  std::size_t dataset_size() const { return indices_.size(); }
  std::size_t batch_size() const { return batch_size_; }

  /// Batches per epoch (ceiling).
  std::size_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  Rng rng_;
  std::size_t cursor_ = 0;
};

}  // namespace apf::data
