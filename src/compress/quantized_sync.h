// Stacking quantization on top of another strategy (paper §7.7's
// Quantization_Manager over APF_Manager).
//
// Push: each participant's transmitted scalars (the unfrozen ones when the
// inner strategy freezes, all of them otherwise) travel as a real "APH1"
// half-precision buffer; the inner strategy aggregates the decoded values.
// Pull: the post-sync scalars travel back the same way. Byte charges are the
// measured buffer sizes — masks are client-derived (§7.7 configuration), so
// no mask bytes ride along.
#pragma once

#include <memory>

#include "fl/sync_strategy.h"

namespace apf::compress {

class QuantizedSync : public fl::SyncStrategy {
 public:
  /// Takes ownership of the wrapped strategy.
  explicit QuantizedSync(std::unique_ptr<fl::SyncStrategy> inner);

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::span<const float> global_params() const override;
  const Bitmap* frozen_mask() const override;
  std::span<const float> frozen_anchor() const override;
  std::string name() const override;

 private:
  std::unique_ptr<fl::SyncStrategy> inner_;
};

}  // namespace apf::compress
