// Stacking quantization on top of another strategy (paper §7.7's
// Quantization_Manager over APF_Manager).
//
// Push: client parameters are rounded through fp16 before the inner strategy
// sees them (what the wire would carry). Pull: the post-sync parameters are
// rounded again. Transmitted value payloads are charged at 2 bytes instead
// of 4, i.e. the inner strategy's byte counts are halved.
#pragma once

#include <memory>

#include "fl/sync_strategy.h"

namespace apf::compress {

class QuantizedSync : public fl::SyncStrategy {
 public:
  /// Takes ownership of the wrapped strategy.
  explicit QuantizedSync(std::unique_ptr<fl::SyncStrategy> inner);

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(std::size_t round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::span<const float> global_params() const override;
  const Bitmap* frozen_mask() const override;
  std::span<const float> frozen_anchor() const override;
  std::string name() const override;

 private:
  std::unique_ptr<fl::SyncStrategy> inner_;
};

}  // namespace apf::compress
