#include "compress/wrappers.h"

#include <cmath>

#include "util/error.h"

namespace apf::compress {

UpdateQuantizedSync::UpdateQuantizedSync(
    std::unique_ptr<fl::SyncStrategy> inner,
    std::unique_ptr<UpdateCodec> codec, std::uint64_t seed)
    : inner_(std::move(inner)), codec_(std::move(codec)), rng_(seed) {
  APF_CHECK(inner_ != nullptr && codec_ != nullptr);
}

void UpdateQuantizedSync::init(std::span<const float> initial_params,
                               std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

fl::SyncStrategy::Result UpdateQuantizedSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  const auto global = inner_->global_params();
  const std::size_t dim = global.size();
  const std::size_t n = client_params.size();
  // Malformed rounds go straight to the inner strategy, which rejects them
  // atomically before any proposal is quantized.
  bool well_formed = weights.size() == n && n > 0;
  for (std::size_t i = 0; well_formed && i < n; ++i) {
    well_formed = client_params[i].size() == dim;
  }
  if (!well_formed) return inner_->synchronize(round, client_params, weights);

  // Quantize into STAGED copies of the proposals and the rng: the codec can
  // reject mid-loop (a non-finite update), and a shape-valid round can still
  // be thrown out by the inner strategy (non-finite weights, zero total).
  // Rejection must be atomic — the caller's proposals and this wrapper's rng
  // stream stay exactly as they were, as if the round never happened.
  const Bitmap* mask = inner_->frozen_mask();
  Rng staged_rng = rng_;
  std::vector<std::vector<float>> staged = client_params;
  std::vector<fl::ByteCount> up_bytes(n, fl::ByteCount(0));
  std::vector<std::vector<std::uint8_t>> up_frames(n);
  std::vector<float> update;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) continue;
    auto& params = staged[i];
    // Only transmitted coordinates run through the codec: under a freezing
    // inner strategy the frozen scalars never leave the client.
    update.clear();
    for (std::size_t j = 0; j < dim; ++j) {
      if (mask != nullptr && mask->get(j)) continue;
      update.push_back(params[j] - global[j]);
    }
    // Push: the quantized update travels as the codec's framed buffer; the
    // receiver applies the decoded update on top of the shared model.
    std::vector<std::uint8_t> buf = codec_->encode(update, staged_rng);
    const std::vector<float> decoded = codec_->decode(buf);
    up_bytes[i] = fl::ByteCount(buf.size());
    up_frames[i] = std::move(buf);
    std::size_t t = 0;
    for (std::size_t j = 0; j < dim; ++j) {
      if (mask != nullptr && mask->get(j)) continue;
      params[j] = global[j] + decoded[t++];
    }
  }
  Result result = inner_->synchronize(round, staged, weights);
  // Commit only after the inner strategy accepted the round.
  client_params = std::move(staged);
  rng_ = staged_rng;
  // The pull direction is left to the inner strategy (QSGD and TernGrad
  // compress the push only), so its pull frames survive; the push frames
  // are the codec's framed buffers.
  result.bytes_up = std::move(up_bytes);
  result.frames_up = std::move(up_frames);
  return result;
}

std::span<const float> UpdateQuantizedSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* UpdateQuantizedSync::frozen_mask() const {
  return inner_->frozen_mask();
}

std::span<const float> UpdateQuantizedSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string UpdateQuantizedSync::name() const {
  return inner_->name() + "+" + codec_->name();
}

DpNoiseSync::DpNoiseSync(std::unique_ptr<fl::SyncStrategy> inner,
                         double noise_stddev, std::uint64_t seed)
    : inner_(std::move(inner)), noise_stddev_(noise_stddev), rng_(seed) {
  APF_CHECK(inner_ != nullptr);
  APF_CHECK(noise_stddev >= 0.0);
}

void DpNoiseSync::init(std::span<const float> initial_params,
                       std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

fl::SyncStrategy::Result DpNoiseSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  if (noise_stddev_ <= 0.0) {
    return inner_->synchronize(round, client_params, weights);
  }
  // Noise is applied to STAGED copies of the proposals and the rng: the
  // inner strategy can still reject the round (bad shapes, non-finite
  // weights, zero total), and rejection must be atomic — the caller's
  // proposals stay exactly as submitted and the noise stream is not
  // consumed, as if the round never happened.
  const Bitmap* mask = inner_->frozen_mask();
  Rng staged_rng = rng_;
  std::vector<std::vector<float>> staged = client_params;
  // Frozen scalars are not transmitted, so they carry no noise; pinning
  // keeps them exact on every client.
  for (auto& params : staged) {
    for (std::size_t j = 0; j < params.size(); ++j) {
      if (mask != nullptr && mask->get(j)) continue;
      params[j] += static_cast<float>(staged_rng.normal(0.0, noise_stddev_));
    }
  }
  Result result = inner_->synchronize(round, staged, weights);
  // Commit only after the inner strategy accepted the round.
  client_params = std::move(staged);
  rng_ = staged_rng;
  return result;
}

std::span<const float> DpNoiseSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* DpNoiseSync::frozen_mask() const { return inner_->frozen_mask(); }

std::span<const float> DpNoiseSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string DpNoiseSync::name() const {
  return inner_->name() + "+DP";
}

}  // namespace apf::compress
