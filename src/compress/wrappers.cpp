#include "compress/wrappers.h"

#include <cmath>

#include "util/error.h"

namespace apf::compress {

UpdateQuantizedSync::UpdateQuantizedSync(
    std::unique_ptr<fl::SyncStrategy> inner,
    std::unique_ptr<UpdateCodec> codec, std::uint64_t seed)
    : inner_(std::move(inner)), codec_(std::move(codec)), rng_(seed) {
  APF_CHECK(inner_ != nullptr && codec_ != nullptr);
}

void UpdateQuantizedSync::init(std::span<const float> initial_params,
                               std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

fl::SyncStrategy::Result UpdateQuantizedSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  const auto global = inner_->global_params();
  const std::size_t dim = global.size();
  std::vector<float> update(dim);
  for (auto& params : client_params) {
    APF_CHECK(params.size() == dim);
    for (std::size_t j = 0; j < dim; ++j) update[j] = params[j] - global[j];
    codec_->encode_decode(update, rng_);
    for (std::size_t j = 0; j < dim; ++j) params[j] = global[j] + update[j];
  }
  Result result = inner_->synchronize(round, client_params, weights);
  // Re-charge the push at the codec's wire cost. The inner strategy charges
  // 4 B per transmitted element, so bytes/4 recovers the element count
  // (e.g. only the unfrozen scalars under APF).
  for (auto& b : result.bytes_up) {
    const auto elements = static_cast<std::size_t>(b / 4.0);
    b = codec_->wire_bytes(elements);
  }
  return result;
}

std::span<const float> UpdateQuantizedSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* UpdateQuantizedSync::frozen_mask() const {
  return inner_->frozen_mask();
}

std::span<const float> UpdateQuantizedSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string UpdateQuantizedSync::name() const {
  return inner_->name() + "+" + codec_->name();
}

DpNoiseSync::DpNoiseSync(std::unique_ptr<fl::SyncStrategy> inner,
                         double noise_stddev, std::uint64_t seed)
    : inner_(std::move(inner)), noise_stddev_(noise_stddev), rng_(seed) {
  APF_CHECK(inner_ != nullptr);
  APF_CHECK(noise_stddev >= 0.0);
}

void DpNoiseSync::init(std::span<const float> initial_params,
                       std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

fl::SyncStrategy::Result DpNoiseSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  if (noise_stddev_ > 0.0) {
    // Frozen scalars are not transmitted, so they carry no noise; pinning
    // keeps them exact on every client.
    const Bitmap* mask = inner_->frozen_mask();
    for (auto& params : client_params) {
      for (std::size_t j = 0; j < params.size(); ++j) {
        if (mask != nullptr && mask->get(j)) continue;
        params[j] += static_cast<float>(rng_.normal(0.0, noise_stddev_));
      }
    }
  }
  return inner_->synchronize(round, client_params, weights);
}

std::span<const float> DpNoiseSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* DpNoiseSync::frozen_mask() const { return inner_->frozen_mask(); }

std::span<const float> DpNoiseSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string DpNoiseSync::name() const {
  return inner_->name() + "+DP";
}

}  // namespace apf::compress
