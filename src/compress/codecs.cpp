#include "compress/codecs.h"

#include <cmath>

#include "util/error.h"

namespace apf::compress {

QsgdCodec::QsgdCodec(unsigned bits)
    : bits_(bits), levels_((1u << bits) - 1) {
  APF_CHECK(bits >= 1 && bits <= 16);
}

void QsgdCodec::encode_decode(std::span<float> update, Rng& rng) const {
  double norm_sq = 0.0;
  for (float v : update) norm_sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(norm_sq);
  if (norm == 0.0) return;
  const double s = static_cast<double>(levels_);
  for (auto& v : update) {
    const double ratio = std::fabs(static_cast<double>(v)) / norm * s;
    const double lower = std::floor(ratio);
    const double level = lower + (rng.bernoulli(ratio - lower) ? 1.0 : 0.0);
    const double q = norm * level / s;
    v = static_cast<float>(v < 0 ? -q : q);
  }
}

double QsgdCodec::wire_bytes(std::size_t n) const {
  // bits per magnitude + 1 sign bit per element, plus the fp32 norm.
  return static_cast<double>(n) * (bits_ + 1) / 8.0 + 4.0;
}

std::string QsgdCodec::name() const {
  return "QSGD" + std::to_string(bits_) + "b";
}

void TernGradCodec::encode_decode(std::span<float> update, Rng& rng) const {
  float scale = 0.f;
  for (float v : update) scale = std::max(scale, std::fabs(v));
  if (scale == 0.f) return;
  for (auto& v : update) {
    const double p = std::fabs(v) / scale;
    const float t = rng.bernoulli(p) ? scale : 0.f;
    v = v < 0 ? -t : t;
  }
}

double TernGradCodec::wire_bytes(std::size_t n) const {
  return static_cast<double>(n) * 2.0 / 8.0 + 4.0;
}

}  // namespace apf::compress
