#include "compress/codecs.h"

#include <algorithm>

#include "compress/wire.h"
#include "util/error.h"

namespace apf::compress {

QsgdCodec::QsgdCodec(unsigned bits)
    : bits_(bits), levels_((1u << bits) - 1) {
  APF_CHECK(bits >= 1 && bits <= 16);
}

void QsgdCodec::encode_decode(std::span<float> update, Rng& rng) const {
  // Quantize/dequantize through the shared wire helpers so the in-place
  // value distortion is bit-identical to what a receiver decodes from the
  // "APQ1" byte format (including the fp32 rounding of the transmitted
  // norm).
  const QsgdPayload payload = qsgd_quantize(update, bits_, rng);
  const std::vector<float> decoded = qsgd_dequantize(payload);
  std::copy(decoded.begin(), decoded.end(), update.begin());
}

std::vector<std::uint8_t> QsgdCodec::encode(std::span<const float> update,
                                            Rng& rng) const {
  return encode_qsgd(qsgd_quantize(update, bits_, rng));
}

std::vector<float> QsgdCodec::decode(
    std::span<const std::uint8_t> bytes) const {
  return qsgd_dequantize(decode_qsgd(bytes));
}

double QsgdCodec::wire_bytes(std::size_t n) const {
  // bits per magnitude + 1 sign bit per element, plus the fp32 norm.
  return static_cast<double>(n) * (bits_ + 1) / 8.0 + 4.0;
}

std::string QsgdCodec::name() const {
  return "QSGD" + std::to_string(bits_) + "b";
}

void TernGradCodec::encode_decode(std::span<float> update, Rng& rng) const {
  const TernPayload payload = terngrad_quantize(update, rng);
  const std::vector<float> decoded = terngrad_dequantize(payload);
  std::copy(decoded.begin(), decoded.end(), update.begin());
}

std::vector<std::uint8_t> TernGradCodec::encode(std::span<const float> update,
                                                Rng& rng) const {
  return encode_terngrad(terngrad_quantize(update, rng));
}

std::vector<float> TernGradCodec::decode(
    std::span<const std::uint8_t> bytes) const {
  return terngrad_dequantize(decode_terngrad(bytes));
}

double TernGradCodec::wire_bytes(std::size_t n) const {
  return static_cast<double>(n) * 2.0 / 8.0 + 4.0;
}

}  // namespace apf::compress
