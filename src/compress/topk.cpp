#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/wire.h"
#include "util/error.h"

namespace apf::compress {

TopKSync::TopKSync(TopKOptions options) : options_(options) {
  APF_CHECK(options_.fraction > 0.0 && options_.fraction <= 1.0);
}

void TopKSync::init(std::span<const float> initial_params,
                    std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  residual_.clear();
}

std::vector<std::vector<float>> TopKSync::residuals() const {
  std::vector<std::vector<float>> out(
      num_clients_, std::vector<float>(global_.size(), 0.f));
  residual_.for_each_ordered(
      [&](util::ClientId id, const std::vector<float>& r) {
        out[id.value()] = r;
      });
  return out;
}

fl::SyncStrategy::Result TopKSync::synchronize(fl::RoundId /*round*/, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  APF_CHECK(n == num_clients_);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.fraction * static_cast<double>(dim))));

  double weight_total = 0.0;
  for (double w : weights) weight_total += w;
  APF_CHECK(weight_total > 0.0);

  Result result;
  result.bytes_up.assign(n, fl::ByteCount(0));
  result.bytes_down.assign(n, fl::ByteCount(0));
  result.frames_up.resize(n);

  std::vector<double> acc(dim, 0.0);
  std::vector<float> pending(dim);
  std::vector<std::size_t> order(dim);
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) {
      // Dropped/non-participating client: no work this round, so neither
      // its residual nor the byte counters should move.
      continue;
    }
    std::vector<float>& residual = residual_.obtain(fl::ClientId(i));
    if (residual.empty()) residual.assign(dim, 0.f);
    for (std::size_t j = 0; j < dim; ++j) {
      pending[j] = client_params[i][j] - global_[j] + residual[j];
    }
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return std::fabs(pending[a]) > std::fabs(pending[b]);
                     });
    // Push: the selected (index, value) set travels as an "APS1" sparse
    // buffer; the server aggregates the decoded components.
    SparsePayload payload;
    payload.dim = static_cast<std::uint32_t>(dim);
    std::vector<std::size_t> sent(order.begin(),
                                  order.begin() +
                                      static_cast<std::ptrdiff_t>(k));
    std::sort(sent.begin(), sent.end());
    for (const std::size_t j : sent) {
      payload.indices.push_back(static_cast<std::uint32_t>(j));
      payload.values.push_back(pending[j]);
    }
    std::vector<std::uint8_t> buf = encode_sparse(payload);
    const SparsePayload decoded = decode_sparse(buf);
    result.bytes_up[i] = fl::ByteCount(buf.size());
    result.frames_up[i] = std::move(buf);
    const double w = weights[i] / weight_total;
    for (std::size_t t = 0; t < decoded.indices.size(); ++t) {
      acc[decoded.indices[t]] += w * static_cast<double>(decoded.values[t]);
    }
    for (std::size_t r = 0; r < dim; ++r) {
      const std::size_t j = order[r];
      residual[j] = r < k ? 0.f : pending[j];
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    global_[j] += static_cast<float>(acc[j]);
  }
  // Pull: one dense model buffer, decoded by every client; only this
  // round's participants are charged for it.
  std::vector<std::uint8_t> down = encode_dense(global_);
  const std::vector<float> decoded_down = decode_dense(down);
  for (std::size_t i = 0; i < n; ++i) {
    client_params[i] = decoded_down;
    if (weights[i] > 0.0) {
      result.bytes_down[i] = fl::ByteCount(down.size());
    }
  }
  result.broadcast_frame = std::move(down);
  return result;
}

}  // namespace apf::compress
