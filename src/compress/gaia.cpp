#include "compress/gaia.h"

#include <cmath>

#include "compress/wire.h"
#include "util/error.h"

namespace apf::compress {

GaiaSync::GaiaSync(GaiaOptions options) : options_(options) {
  APF_CHECK(options_.significance_threshold > 0.0);
}

void GaiaSync::init(std::span<const float> initial_params,
                    std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  residual_.clear();
}

std::vector<std::vector<float>> GaiaSync::residuals() const {
  std::vector<std::vector<float>> out(
      num_clients_, std::vector<float>(global_.size(), 0.f));
  residual_.for_each_ordered(
      [&](util::ClientId id, const std::vector<float>& r) {
        out[id.value()] = r;
      });
  return out;
}

fl::SyncStrategy::Result GaiaSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  APF_CHECK(n == num_clients_);
  const double threshold =
      options_.decay_threshold
          ? options_.significance_threshold /
                std::sqrt(static_cast<double>(round.value()))
          : options_.significance_threshold;

  double weight_total = 0.0;
  for (double w : weights) weight_total += w;
  APF_CHECK(weight_total > 0.0);

  Result result;
  result.bytes_up.assign(n, fl::ByteCount(0));
  result.bytes_down.assign(n, fl::ByteCount(0));
  result.frames_up.resize(n);

  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) {
      // Non-participating (or dropped) client: it did no work this round,
      // so its residual must not absorb the stale-parameter gap.
      continue;
    }
    const double w = weights[i] / weight_total;
    std::vector<float>& residual = residual_.obtain(fl::ClientId(i));
    if (residual.empty()) residual.assign(dim, 0.f);
    // Push: the significant set travels as an "APS1" sparse buffer
    // (ascending coordinate order); the server aggregates the decoded
    // components.
    SparsePayload payload;
    payload.dim = static_cast<std::uint32_t>(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      // Pending update = this round's local change plus carried residual.
      const float u = client_params[i][j] - global_[j] + residual[j];
      const double denom =
          std::max(static_cast<double>(std::fabs(global_[j])), options_.eps);
      const bool significant =
          static_cast<double>(std::fabs(u)) / denom >= threshold;
      if (significant) {
        payload.indices.push_back(static_cast<std::uint32_t>(j));
        payload.values.push_back(u);
        residual[j] = 0.f;
      } else {
        residual[j] = u;
      }
    }
    std::vector<std::uint8_t> buf = encode_sparse(payload);
    const SparsePayload decoded = decode_sparse(buf);
    result.bytes_up[i] = fl::ByteCount(buf.size());
    result.frames_up[i] = std::move(buf);
    for (std::size_t t = 0; t < decoded.indices.size(); ++t) {
      acc[decoded.indices[t]] += w * static_cast<double>(decoded.values[t]);
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    global_[j] += static_cast<float>(acc[j]);
  }
  // Pull: one dense model buffer, decoded by every client; only this
  // round's participants are charged for it.
  std::vector<std::uint8_t> down = encode_dense(global_);
  const std::vector<float> decoded_down = decode_dense(down);
  for (std::size_t i = 0; i < n; ++i) {
    client_params[i] = decoded_down;
    if (weights[i] > 0.0) {
      result.bytes_down[i] = fl::ByteCount(down.size());
    }
  }
  result.broadcast_frame = std::move(down);
  return result;
}

}  // namespace apf::compress
