#include "compress/gaia.h"

#include <cmath>

#include "compress/wire.h"
#include "util/debug.h"
#include "util/error.h"

namespace apf::compress {

GaiaSync::GaiaSync(GaiaOptions options) : options_(options) {
  APF_CHECK(options_.significance_threshold > 0.0);
}

void GaiaSync::init(std::span<const float> initial_params,
                    std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  residual_.assign(num_clients,
                   std::vector<float>(initial_params.size(), 0.f));
}

fl::SyncStrategy::Result GaiaSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  APF_CHECK(n == residual_.size());
  const double threshold =
      options_.decay_threshold
          ? options_.significance_threshold /
                std::sqrt(static_cast<double>(round))
          : options_.significance_threshold;

  double weight_total = 0.0;
  for (double w : weights) weight_total += w;
  APF_CHECK(weight_total > 0.0);

  Result result;
  result.bytes_up.assign(n, 0.0);
  result.bytes_down.assign(n, 0.0);

  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    APF_CHECK(client_params[i].size() == dim);
    if (weights[i] == 0.0) {
      // Non-participating (or dropped) client: it did no work this round,
      // so its residual must not absorb the stale-parameter gap.
      result.bytes_up[i] = 0.0;
      result.bytes_down[i] = 0.0;
      continue;
    }
    std::size_t sent = 0;
    const double w = weights[i] / weight_total;
    SparsePayload dbg_payload;  // filled only when debug checks are compiled in
    for (std::size_t j = 0; j < dim; ++j) {
      // Pending update = this round's local change plus carried residual.
      const float u = client_params[i][j] - global_[j] + residual_[i][j];
      const double denom =
          std::max(static_cast<double>(std::fabs(global_[j])), options_.eps);
      const bool significant =
          static_cast<double>(std::fabs(u)) / denom >= threshold;
      if (significant && weights[i] > 0.0) {
        acc[j] += w * static_cast<double>(u);
        residual_[i][j] = 0.f;
        ++sent;
        if constexpr (debug::kChecksEnabled) {
          dbg_payload.indices.push_back(static_cast<std::uint32_t>(j));
          dbg_payload.values.push_back(u);
        }
      } else {
        residual_[i][j] = u;
      }
    }
    if constexpr (debug::kChecksEnabled) {
      // Wire conformance: the significant set, framed as the "APS1" sparse
      // byte format, must survive encode/decode bit-exactly.
      dbg_payload.dim = static_cast<std::uint32_t>(dim);
      const SparsePayload round_trip =
          decode_sparse(encode_sparse(dbg_payload));
      APF_DEBUG_ASSERT_MSG(round_trip.indices == dbg_payload.indices &&
                               round_trip.values == dbg_payload.values,
                           "gaia sparse wire round trip drifted");
    }
    // Sparse payload: 4 B per value plus a presence bitmap.
    result.bytes_up[i] =
        4.0 * static_cast<double>(sent) + static_cast<double>(dim) / 8.0;
    // Pull phase ships the full model.
    result.bytes_down[i] = 4.0 * static_cast<double>(dim);
  }
  for (std::size_t j = 0; j < dim; ++j) {
    global_[j] += static_cast<float>(acc[j]);
  }
  for (auto& params : client_params) {
    params.assign(global_.begin(), global_.end());
  }
  return result;
}

}  // namespace apf::compress
