#include "compress/quantized_sync.h"

#include <cstdint>
#include <optional>

#include "util/error.h"
#include "wire/masked.h"
#include "wire/wire.h"

namespace apf::compress {

QuantizedSync::QuantizedSync(std::unique_ptr<fl::SyncStrategy> inner)
    : inner_(std::move(inner)) {
  APF_CHECK(inner_ != nullptr);
}

void QuantizedSync::init(std::span<const float> initial_params,
                         std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

namespace {

/// Rounds the client's transmitted scalars (the unfrozen ones when `mask` is
/// set, all of them otherwise) through a real "APH1" half-precision buffer
/// and returns that buffer (its size is the charge, and the runner routes it
/// over the transport bus). Frozen scalars never travel, so they stay exact.
std::vector<std::uint8_t> fp16_round_trip(std::vector<float>& params,
                                          const std::optional<Bitmap>& mask) {
  std::vector<std::uint8_t> buf;
  if (mask.has_value()) {
    buf = wire::encode_fp16_payload(wire::pack_unfrozen(params, *mask));
    wire::unpack_unfrozen(wire::decode_fp16_payload(buf), *mask, params);
  } else {
    buf = wire::encode_fp16_payload(params);
    params = wire::decode_fp16_payload(buf);
  }
  return buf;
}

}  // namespace

fl::SyncStrategy::Result QuantizedSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  // Malformed rounds go straight to the inner strategy, which rejects them
  // atomically before any proposal is quantized.
  const std::size_t n = client_params.size();
  const std::size_t dim = inner_->global_params().size();
  bool well_formed = weights.size() == n && n > 0;
  for (std::size_t i = 0; well_formed && i < n; ++i) {
    well_formed = client_params[i].size() == dim;
  }
  if (!well_formed) return inner_->synchronize(round, client_params, weights);

  // The mask in force while this round's payloads travel (the inner strategy
  // may grow it during synchronize()). Masks are client-derived (§7.7
  // configuration), so no mask bytes ride along with the fp16 payload.
  std::optional<Bitmap> mask;
  if (const Bitmap* inner_mask = inner_->frozen_mask()) mask = *inner_mask;

  std::vector<fl::ByteCount> up_bytes(n, fl::ByteCount(0));
  std::vector<fl::ByteCount> down_bytes(n, fl::ByteCount(0));
  std::vector<std::vector<std::uint8_t>> up_frames(n);
  std::vector<std::vector<std::uint8_t>> down_frames(n);
  // Push-side: each participant's payload travels as a real half-precision
  // buffer; the server aggregates what the wire carried. The round trips
  // run on STAGED copies: a shape-valid round the inner strategy still
  // rejects (non-finite weights, zero total) must leave the caller's
  // proposals untouched — rejection is atomic.
  std::vector<std::vector<float>> staged = client_params;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) continue;
    up_frames[i] = fp16_round_trip(staged[i], mask);
    up_bytes[i] = fl::ByteCount(up_frames[i].size());
  }
  Result result = inner_->synchronize(round, staged, weights);
  client_params = std::move(staged);
  // Pull-side: the post-sync parameters travel back the same way.
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) continue;
    down_frames[i] = fp16_round_trip(client_params[i], mask);
    down_bytes[i] = fl::ByteCount(down_frames[i].size());
  }
  // The wrapper's fp16 buffers replace the inner strategy's traffic in both
  // directions (per-client pulls, so no shared broadcast frame survives).
  result.bytes_up = std::move(up_bytes);
  result.bytes_down = std::move(down_bytes);
  result.frames_up = std::move(up_frames);
  result.frames_down = std::move(down_frames);
  result.broadcast_frame.clear();
  return result;
}

std::span<const float> QuantizedSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* QuantizedSync::frozen_mask() const {
  return inner_->frozen_mask();
}

std::span<const float> QuantizedSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string QuantizedSync::name() const { return inner_->name() + "+Q"; }

}  // namespace apf::compress
