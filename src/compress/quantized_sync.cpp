#include "compress/quantized_sync.h"

#include "compress/quantize.h"
#include "util/error.h"

namespace apf::compress {

QuantizedSync::QuantizedSync(std::unique_ptr<fl::SyncStrategy> inner)
    : inner_(std::move(inner)) {
  APF_CHECK(inner_ != nullptr);
}

void QuantizedSync::init(std::span<const float> initial_params,
                         std::size_t num_clients) {
  inner_->init(initial_params, num_clients);
}

fl::SyncStrategy::Result QuantizedSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  // Push-side rounding: the server aggregates what the wire carried.
  for (auto& params : client_params) quantize_fp16_inplace(params);
  Result result = inner_->synchronize(round, client_params, weights);
  // Pull-side rounding: the clients receive fp16 parameters.
  for (auto& params : client_params) quantize_fp16_inplace(params);
  for (auto& b : result.bytes_up) b *= 0.5;
  for (auto& b : result.bytes_down) b *= 0.5;
  return result;
}

std::span<const float> QuantizedSync::global_params() const {
  return inner_->global_params();
}

const Bitmap* QuantizedSync::frozen_mask() const {
  return inner_->frozen_mask();
}

std::span<const float> QuantizedSync::frozen_anchor() const {
  return inner_->frozen_anchor();
}

std::string QuantizedSync::name() const { return inner_->name() + "+Q"; }

}  // namespace apf::compress
