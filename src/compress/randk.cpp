#include "compress/randk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/wire.h"
#include "util/debug.h"
#include "util/error.h"

namespace apf::compress {

RandKSync::RandKSync(RandKOptions options) : options_(options) {
  APF_CHECK(options_.fraction > 0.0 && options_.fraction <= 1.0);
}

void RandKSync::init(std::span<const float> initial_params,
                     std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  residual_.assign(num_clients,
                   std::vector<float>(initial_params.size(), 0.f));
}

fl::SyncStrategy::Result RandKSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.fraction * static_cast<double>(dim))));

  // The coordinate set for this round: identical on every client/server
  // because it is derived from the synchronized round index.
  std::uint64_t mix = options_.seed + 0x9E3779B97F4A7C15ULL * round;
  Rng rng(splitmix64(mix));
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<bool> selected(dim, false);
  for (std::size_t i = 0; i < k; ++i) selected[order[i]] = true;

  double weight_total = 0.0;
  for (double w : weights) weight_total += w;
  APF_CHECK(weight_total > 0.0);

  const float scale =
      options_.unbiased_scaling
          ? static_cast<float>(static_cast<double>(dim) /
                               static_cast<double>(k))
          : 1.f;

  Result result;
  result.bytes_up.assign(n, 0.0);
  result.bytes_down.assign(n, 4.0 * static_cast<double>(dim));

  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    APF_CHECK(client_params[i].size() == dim);
    if (weights[i] == 0.0) {
      // Dropped/non-participating client: leave residual and bytes at zero.
      result.bytes_up[i] = 0.0;
      result.bytes_down[i] = 0.0;
      continue;
    }
    const double w = weights[i] / weight_total;
    RandkPayload dbg_payload;  // filled only when debug checks are compiled in
    for (std::size_t j = 0; j < dim; ++j) {
      const float pending =
          client_params[i][j] - global_[j] + residual_[i][j];
      if (selected[j]) {
        acc[j] += w * static_cast<double>(pending) * scale;
        residual_[i][j] = 0.f;
        if constexpr (debug::kChecksEnabled) {
          dbg_payload.values.push_back(pending);
        }
      } else {
        residual_[i][j] = pending;
      }
    }
    // Values only — the coordinate set is derivable from the round index,
    // so just 8 B of seed material rides along.
    result.bytes_up[i] = 4.0 * static_cast<double>(k) + 8.0;
    if constexpr (debug::kChecksEnabled) {
      // Wire conformance: the transmitted values for the round's coordinate
      // set (ascending coordinate order — the order both sides derive from
      // the shared seed), framed as the "APR1" byte format, must survive
      // encode/decode bit-exactly.
      dbg_payload.dim = static_cast<std::uint32_t>(dim);
      dbg_payload.count = static_cast<std::uint32_t>(k);
      dbg_payload.seed = options_.seed + 0x9E3779B97F4A7C15ULL * round;
      dbg_payload.scale = scale;
      const RandkPayload round_trip =
          decode_randk(encode_randk(dbg_payload));
      APF_DEBUG_ASSERT_MSG(round_trip.values == dbg_payload.values &&
                               round_trip.seed == dbg_payload.seed,
                           "rand-k wire round trip drifted");
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    global_[j] += static_cast<float>(acc[j]);
  }
  for (auto& params : client_params) {
    params.assign(global_.begin(), global_.end());
  }
  return result;
}

}  // namespace apf::compress
