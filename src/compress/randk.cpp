#include "compress/randk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/wire.h"
#include "util/debug.h"
#include "util/rng.h"
#include "util/error.h"

namespace apf::compress {

RandKSync::RandKSync(RandKOptions options) : options_(options) {
  APF_CHECK(options_.fraction > 0.0 && options_.fraction <= 1.0);
}

void RandKSync::init(std::span<const float> initial_params,
                     std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  residual_.clear();
}

std::vector<std::vector<float>> RandKSync::residuals() const {
  std::vector<std::vector<float>> out(
      num_clients_, std::vector<float>(global_.size(), 0.f));
  residual_.for_each_ordered(
      [&](util::ClientId id, const std::vector<float>& r) {
        out[id.value()] = r;
      });
  return out;
}

fl::SyncStrategy::Result RandKSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  APF_CHECK(n == num_clients_);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.fraction * static_cast<double>(dim))));

  // The coordinate set for this round: identical on every client/server
  // because it is derived from the synchronized round index.
  std::uint64_t mix = options_.seed + 0x9E3779B97F4A7C15ULL * round.value();
  Rng rng(splitmix64(mix));
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<bool> selected(dim, false);
  for (std::size_t i = 0; i < k; ++i) selected[order[i]] = true;

  double weight_total = 0.0;
  for (double w : weights) weight_total += w;
  APF_CHECK(weight_total > 0.0);

  const float scale =
      options_.unbiased_scaling
          ? static_cast<float>(static_cast<double>(dim) /
                               static_cast<double>(k))
          : 1.f;

  Result result;
  result.bytes_up.assign(n, fl::ByteCount(0));
  result.bytes_down.assign(n, fl::ByteCount(0));
  result.frames_up.resize(n);

  // The round's coordinates in ascending order — the order both sides
  // derive from the shared seed, and the order values travel in.
  std::vector<std::size_t> coords;
  coords.reserve(k);
  for (std::size_t j = 0; j < dim; ++j) {
    if (selected[j]) coords.push_back(j);
  }

  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) {
      // Dropped/non-participating client: leave residual and bytes at zero.
      continue;
    }
    const double w = weights[i] / weight_total;
    std::vector<float>& residual = residual_.obtain(fl::ClientId(i));
    if (residual.empty()) residual.assign(dim, 0.f);
    // Push: values only, framed as an "APR1" buffer — the coordinate set is
    // derivable from the seed material that rides along in the header.
    RandkPayload payload;
    payload.dim = static_cast<std::uint32_t>(dim);
    payload.count = static_cast<std::uint32_t>(k);
    payload.seed = mix;
    payload.scale = scale;
    for (std::size_t j = 0; j < dim; ++j) {
      const float pending = client_params[i][j] - global_[j] + residual[j];
      if (selected[j]) {
        payload.values.push_back(pending);
        residual[j] = 0.f;
      } else {
        residual[j] = pending;
      }
    }
    std::vector<std::uint8_t> buf = encode_randk(payload);
    const RandkPayload decoded = decode_randk(buf);
    result.bytes_up[i] = fl::ByteCount(buf.size());
    result.frames_up[i] = std::move(buf);
    APF_DEBUG_ASSERT_MSG(decoded.seed == mix,
                         "rand-k seed drifted through the wire");
    for (std::size_t t = 0; t < coords.size(); ++t) {
      acc[coords[t]] +=
          w * static_cast<double>(decoded.values[t]) * decoded.scale;
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    global_[j] += static_cast<float>(acc[j]);
  }
  // Pull: one dense model buffer, decoded by every client; only this
  // round's participants are charged for it.
  std::vector<std::uint8_t> down = encode_dense(global_);
  const std::vector<float> decoded_down = decode_dense(down);
  for (std::size_t i = 0; i < n; ++i) {
    client_params[i] = decoded_down;
    if (weights[i] > 0.0) {
      result.bytes_down[i] = fl::ByteCount(down.size());
    }
  }
  result.broadcast_frame = std::move(down);
  return result;
}

}  // namespace apf::compress
