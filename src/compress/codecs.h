// Stochastic gradient/update codecs from the communication-compression
// literature the paper surveys (§2): QSGD (Alistarh et al.) and TernGrad
// (Wen et al.). A codec maps an update vector to its wire representation and
// back (encode_decode applies the exact value distortion the receiver would
// see) and reports the wire cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace apf::compress {

class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;

  /// Applies the codec's quantization to `update` in place (what the
  /// receiver would decode). Stochastic codecs draw from `rng`.
  virtual void encode_decode(std::span<float> update, Rng& rng) const = 0;

  /// Quantizes `update` into its framed wire buffer, drawing the same
  /// stochastic rounding as encode_decode would for the same rng state.
  virtual std::vector<std::uint8_t> encode(std::span<const float> update,
                                           Rng& rng) const = 0;

  /// Decodes a buffer produced by encode(); decode(encode(u, rng)) is
  /// bit-identical to encode_decode(u, rng) on the same rng state. Raises
  /// apf::Error on malformed framing.
  virtual std::vector<float> decode(
      std::span<const std::uint8_t> bytes) const = 0;

  /// Modeled wire cost in bytes for a vector of `n` elements (payload +
  /// scalars, headers excluded) — a planning helper; byte *accounting* uses
  /// the measured encode() buffer size.
  virtual double wire_bytes(std::size_t n) const = 0;

  virtual std::string name() const = 0;
};

/// QSGD with s = 2^bits - 1 quantization levels: each coordinate is
/// stochastically rounded to sign * ||u||_2 * level / s, which is unbiased
/// (E[q(u)] = u). Wire cost: (bits + 1 sign bit) per element + the norm.
class QsgdCodec : public UpdateCodec {
 public:
  explicit QsgdCodec(unsigned bits);

  void encode_decode(std::span<float> update, Rng& rng) const override;
  std::vector<std::uint8_t> encode(std::span<const float> update,
                                   Rng& rng) const override;
  std::vector<float> decode(
      std::span<const std::uint8_t> bytes) const override;
  double wire_bytes(std::size_t n) const override;
  std::string name() const override;

  unsigned bits() const { return bits_; }
  unsigned levels() const { return levels_; }

 private:
  unsigned bits_;
  unsigned levels_;
};

/// TernGrad: coordinates quantized to {-1, 0, +1} * max|u| with stochastic
/// selection probability |u_i| / max|u| (unbiased). Wire cost: 2 bits per
/// element + the scale.
class TernGradCodec : public UpdateCodec {
 public:
  void encode_decode(std::span<float> update, Rng& rng) const override;
  std::vector<std::uint8_t> encode(std::span<const float> update,
                                   Rng& rng) const override;
  std::vector<float> decode(
      std::span<const std::uint8_t> bytes) const override;
  double wire_bytes(std::size_t n) const override;
  std::string name() const override { return "TernGrad"; }
};

}  // namespace apf::compress
