// Top-k magnitude sparsification with error feedback (classic baseline in
// the sparsification literature, e.g. Dryden et al. / Strom).
//
// Each client pushes the k largest-magnitude components of its pending
// update (local change + carried residual); the rest accumulate locally.
// Pull ships the full model.
#pragma once

#include "fl/sync_strategy.h"
#include "transport/client_store.h"

namespace apf::compress {

struct TopKOptions {
  double fraction = 0.1;  // k = ceil(fraction * dim)
};

class TopKSync : public fl::SyncStrategyBase {
 public:
  explicit TopKSync(TopKOptions options = {});

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::string name() const override { return "TopK"; }

  /// Per-client error-feedback residuals, materialized densely (client id ->
  /// vector; untouched clients are all-zero). Exposed for the fuzz state
  /// oracle; live state is the lazy sharded store below.
  std::vector<std::vector<float>> residuals() const;

 private:
  TopKOptions options_;
  transport::ShardedClientStore<std::vector<float>> residual_;
};

}  // namespace apf::compress
