// Compatibility shim: the fp16 codec moved to src/wire (module level below
// fl) alongside the rest of the wire formats — see wire/quantize.h. This
// header re-exports it under apf::compress for existing include sites.
#pragma once

#include "wire/quantize.h"

namespace apf::compress {

using wire::float_to_half;
using wire::half_to_float;
using wire::quantize_fp16_inplace;
using wire::encode_fp16;
using wire::decode_fp16;

}  // namespace apf::compress
