// CMFL relevance filtering (Wang et al., ICDCS'19; paper §7.4).
//
// A client's whole update is uploaded only when it is "relevant": the
// fraction of components whose sign agrees with the previous global update
// must exceed a relevance threshold. Irrelevant updates are discarded (the
// client's round of work is not aggregated). Pull ships the full model.
#pragma once

#include "fl/sync_strategy.h"

namespace apf::compress {

struct CmflOptions {
  double relevance_threshold = 0.8;
  /// threshold(round) = relevance_threshold * decay^(round-1); 1.0 = fixed.
  double threshold_decay = 1.0;
};

class CmflSync : public fl::SyncStrategyBase {
 public:
  explicit CmflSync(CmflOptions options = {});

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::string name() const override { return "CMFL"; }

  /// Fraction of client uploads accepted so far (diagnostics).
  double acceptance_rate() const;

  /// Persistent state exposed for the fuzz state oracle.
  const std::vector<float>& prev_update() const {
    return prev_global_update_;
  }
  std::size_t considered() const { return considered_; }
  std::size_t accepted() const { return accepted_; }

 private:
  CmflOptions options_;
  std::vector<float> prev_global_update_;
  std::size_t accepted_ = 0;
  std::size_t considered_ = 0;
};

}  // namespace apf::compress
