// Gaia-style significance sparsification (Hsieh et al., NSDI'17; paper §7.4).
//
// Each client pushes only the update components whose *relative* magnitude
// |u_j| / max(|x_j|, eps) exceeds a significance threshold; insignificant
// components accumulate locally (error feedback) until they become
// significant. The threshold decays as training progresses, as in the Gaia
// paper. The pull phase ships the full model — Gaia compresses push only.
#pragma once

#include "fl/sync_strategy.h"
#include "transport/client_store.h"

namespace apf::compress {

struct GaiaOptions {
  double significance_threshold = 0.01;  // 1% relative change
  /// threshold(round) = significance_threshold / sqrt(round) when true.
  bool decay_threshold = true;
  double eps = 1e-8;  // floor on |x_j| for the relative test
};

class GaiaSync : public fl::SyncStrategyBase {
 public:
  explicit GaiaSync(GaiaOptions options = {});

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::string name() const override { return "Gaia"; }

  /// Per-client error-feedback residuals, materialized densely (client id ->
  /// vector; untouched clients are all-zero). Exposed for the fuzz state
  /// oracle; live state is the lazy sharded store below.
  std::vector<std::vector<float>> residuals() const;

 private:
  GaiaOptions options_;
  // Per-client error feedback, created lazily on first participation so a
  // huge client universe costs nothing until a client actually shows up.
  transport::ShardedClientStore<std::vector<float>> residual_;
};

}  // namespace apf::compress
