// Composable SyncStrategy wrappers.
//
//  * UpdateQuantizedSync — pushes each participant's *update* (local params
//    minus the global model, restricted to unfrozen coordinates) through an
//    UpdateCodec (QSGD / TernGrad) as a real framed wire buffer before the
//    wrapped strategy aggregates the decoded values. Push bytes are the
//    measured buffer sizes; the pull direction is left to the inner strategy
//    (QSGD and TernGrad compress gradients/push only).
//  * DpNoiseSync — client-side differential-privacy noise (paper §9): adds
//    i.i.d. Gaussian noise to each client's pushed update. Used to study the
//    DP <-> effective-perturbation interplay.
#pragma once

#include <memory>

#include "compress/codecs.h"
#include "fl/sync_strategy.h"
#include "util/rng.h"

namespace apf::compress {

class UpdateQuantizedSync : public fl::SyncStrategy {
 public:
  UpdateQuantizedSync(std::unique_ptr<fl::SyncStrategy> inner,
                      std::unique_ptr<UpdateCodec> codec,
                      std::uint64_t seed = 0x0DEC0DEULL);

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::span<const float> global_params() const override;
  const Bitmap* frozen_mask() const override;
  std::span<const float> frozen_anchor() const override;
  std::string name() const override;

  /// The wrapped strategy, for state inspection (snapshot oracles recurse
  /// through the wrapper to reach the inner EMA / freezing state).
  const fl::SyncStrategy& inner() const { return *inner_; }

 private:
  std::unique_ptr<fl::SyncStrategy> inner_;
  std::unique_ptr<UpdateCodec> codec_;
  Rng rng_;
};

class DpNoiseSync : public fl::SyncStrategy {
 public:
  /// `noise_stddev` is the sigma of the Gaussian added to every pushed
  /// update coordinate on every client.
  DpNoiseSync(std::unique_ptr<fl::SyncStrategy> inner, double noise_stddev,
              std::uint64_t seed = 0xD9ULL);

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::span<const float> global_params() const override;
  const Bitmap* frozen_mask() const override;
  std::span<const float> frozen_anchor() const override;
  std::string name() const override;

 private:
  std::unique_ptr<fl::SyncStrategy> inner_;
  double noise_stddev_;
  Rng rng_;
};

}  // namespace apf::compress
