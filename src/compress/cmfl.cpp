#include "compress/cmfl.h"

#include <algorithm>
#include <cmath>

#include "compress/wire.h"
#include "util/error.h"

namespace apf::compress {

CmflSync::CmflSync(CmflOptions options) : options_(options) {
  APF_CHECK(options_.relevance_threshold > 0.0 &&
            options_.relevance_threshold <= 1.0);
  APF_CHECK(options_.threshold_decay > 0.0 && options_.threshold_decay <= 1.0);
}

void CmflSync::init(std::span<const float> initial_params,
                    std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  prev_global_update_.assign(initial_params.size(), 0.f);
}

fl::SyncStrategy::Result CmflSync::synchronize(fl::RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  const double threshold =
      options_.relevance_threshold *
      std::pow(options_.threshold_decay, static_cast<double>(round.value() - 1));

  Result result;
  result.bytes_up.assign(n, fl::ByteCount(0));
  result.bytes_down.assign(n, fl::ByteCount(0));
  result.frames_up.resize(n);

  // Relevance check: sign agreement with the previous global update. In the
  // first round there is no reference update, so every upload is relevant.
  std::vector<bool> upload(n, false);
  std::size_t uploads = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) continue;
    ++considered_;
    if (round == fl::RoundId(1)) {
      upload[i] = true;
    } else {
      std::size_t agree = 0;
      for (std::size_t j = 0; j < dim; ++j) {
        const float u = client_params[i][j] - global_[j];
        const bool same_sign =
            (u >= 0.f) == (prev_global_update_[j] >= 0.f);
        if (same_sign) ++agree;
      }
      upload[i] = static_cast<double>(agree) / static_cast<double>(dim) >=
                  threshold;
    }
    if (upload[i]) {
      ++uploads;
      ++accepted_;
    }
  }
  // If every update was filtered, fall back to accepting all non-dropped
  // clients so the round still makes progress (matches CMFL's guarantee that
  // training never stalls).
  if (uploads == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (weights[i] > 0.0) upload[i] = true;
    }
  }

  double weight_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (upload[i]) weight_total += weights[i];
  }
  APF_CHECK(weight_total > 0.0);
  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!upload[i]) continue;
    // Push: a relevant upload ships the full parameter vector as an "APD1"
    // dense buffer; the server aggregates the decoded values.
    std::vector<std::uint8_t> buf = encode_dense(client_params[i]);
    const std::vector<float> decoded = decode_dense(buf);
    result.bytes_up[i] = fl::ByteCount(buf.size());
    result.frames_up[i] = std::move(buf);
    const double w = weights[i] / weight_total;
    for (std::size_t j = 0; j < dim; ++j) {
      acc[j] += w * static_cast<double>(decoded[j] - global_[j]);
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    prev_global_update_[j] = static_cast<float>(acc[j]);
    global_[j] += static_cast<float>(acc[j]);
  }
  // Pull: every client — dropped ones included — receives the new model as
  // one dense buffer (the long-standing CMFL convention charges all n).
  std::vector<std::uint8_t> down = encode_dense(global_);
  const std::vector<float> decoded_down = decode_dense(down);
  for (std::size_t i = 0; i < n; ++i) {
    client_params[i] = decoded_down;
    result.bytes_down[i] = fl::ByteCount(down.size());
  }
  result.broadcast_frame = std::move(down);
  return result;
}

double CmflSync::acceptance_rate() const {
  return considered_ == 0 ? 0.0
                          : static_cast<double>(accepted_) /
                                static_cast<double>(considered_);
}

}  // namespace apf::compress
