#include "compress/cmfl.h"

#include <algorithm>
#include <cmath>

#include "compress/wire.h"
#include "util/debug.h"
#include "util/error.h"

namespace apf::compress {

CmflSync::CmflSync(CmflOptions options) : options_(options) {
  APF_CHECK(options_.relevance_threshold > 0.0 &&
            options_.relevance_threshold <= 1.0);
  APF_CHECK(options_.threshold_decay > 0.0 && options_.threshold_decay <= 1.0);
}

void CmflSync::init(std::span<const float> initial_params,
                    std::size_t num_clients) {
  SyncStrategyBase::init(initial_params, num_clients);
  prev_global_update_.assign(initial_params.size(), 0.f);
}

fl::SyncStrategy::Result CmflSync::synchronize(
    std::size_t round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  const std::size_t n = client_params.size();
  const std::size_t dim = global_.size();
  const double threshold =
      options_.relevance_threshold *
      std::pow(options_.threshold_decay, static_cast<double>(round - 1));

  Result result;
  result.bytes_up.assign(n, 0.0);
  result.bytes_down.assign(n, 4.0 * static_cast<double>(dim));

  // Relevance check: sign agreement with the previous global update. In the
  // first round there is no reference update, so every upload is relevant.
  std::vector<bool> upload(n, false);
  std::size_t uploads = 0;
  for (std::size_t i = 0; i < n; ++i) {
    APF_CHECK(client_params[i].size() == dim);
    if (weights[i] == 0.0) continue;
    ++considered_;
    if (round == 1) {
      upload[i] = true;
    } else {
      std::size_t agree = 0;
      for (std::size_t j = 0; j < dim; ++j) {
        const float u = client_params[i][j] - global_[j];
        const bool same_sign =
            (u >= 0.f) == (prev_global_update_[j] >= 0.f);
        if (same_sign) ++agree;
      }
      upload[i] = static_cast<double>(agree) / static_cast<double>(dim) >=
                  threshold;
    }
    if (upload[i]) {
      ++uploads;
      ++accepted_;
      result.bytes_up[i] = 4.0 * static_cast<double>(dim);
    }
  }
  // If every update was filtered, fall back to accepting all non-dropped
  // clients so the round still makes progress (matches CMFL's guarantee that
  // training never stalls).
  if (uploads == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (weights[i] > 0.0) {
        upload[i] = true;
        result.bytes_up[i] = 4.0 * static_cast<double>(dim);
      }
    }
  }

  double weight_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (upload[i]) weight_total += weights[i];
  }
  APF_CHECK(weight_total > 0.0);
  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!upload[i]) continue;
    if constexpr (debug::kChecksEnabled) {
      // Wire conformance: a relevant upload ships the full parameter
      // vector; framed as the "APD1" dense byte format it must survive
      // encode/decode bit-exactly.
      const std::vector<float> round_trip =
          decode_dense(encode_dense(client_params[i]));
      APF_DEBUG_ASSERT_MSG(round_trip == client_params[i],
                           "cmfl dense wire round trip drifted");
    }
    const double w = weights[i] / weight_total;
    for (std::size_t j = 0; j < dim; ++j) {
      acc[j] += w * static_cast<double>(client_params[i][j] - global_[j]);
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    prev_global_update_[j] = static_cast<float>(acc[j]);
    global_[j] += static_cast<float>(acc[j]);
  }
  for (auto& params : client_params) {
    params.assign(global_.begin(), global_.end());
  }
  return result;
}

double CmflSync::acceptance_rate() const {
  return considered_ == 0 ? 0.0
                          : static_cast<double>(accepted_) /
                                static_cast<double>(considered_);
}

}  // namespace apf::compress
