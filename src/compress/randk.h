// Rand-k sparsification with error feedback: each client pushes a random k
// fraction of its pending update coordinates, unbiased-scaled by 1/fraction.
// The selection is drawn per round from the synchronized round index, so
// client and server agree on the coordinate set without transmitting
// indices (only the payload and a tiny seed are charged).
//
// Rand-k is the classic unbiased counterpart of Top-k: cheaper to select and
// index-free, but blind to magnitude — a useful reference point for how much
// of Top-k's (and APF's) benefit comes from *informed* selection.
#pragma once

#include "fl/sync_strategy.h"
#include "transport/client_store.h"

namespace apf::compress {

struct RandKOptions {
  double fraction = 0.1;  // k = ceil(fraction * dim)
  /// Scale transmitted coordinates by 1/fraction so the expected aggregated
  /// update is unbiased. Disable to study the biased variant.
  bool unbiased_scaling = true;
  std::uint64_t seed = 0x5EEDULL;
};

class RandKSync : public fl::SyncStrategyBase {
 public:
  explicit RandKSync(RandKOptions options = {});

  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;
  Result synchronize(fl::RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;
  std::string name() const override { return "RandK"; }

  /// Per-client error-feedback residuals, materialized densely (client id ->
  /// vector; untouched clients are all-zero). Exposed for the fuzz state
  /// oracle; live state is the lazy sharded store below.
  std::vector<std::vector<float>> residuals() const;

 private:
  RandKOptions options_;
  transport::ShardedClientStore<std::vector<float>> residual_;
};

}  // namespace apf::compress
