// Compatibility shim: the wire codecs moved to src/wire (module level below
// fl) so the transport layer can be shared by every strategy — see
// wire/wire.h for the formats and docs/WIRE.md for the measured-transport
// invariant. This header re-exports them under apf::compress for existing
// include sites.
#pragma once

#include "wire/wire.h"

namespace apf::compress {

using wire::SparsePayload;
using wire::encode_sparse;
using wire::decode_sparse;

using wire::RandkPayload;
using wire::encode_randk;
using wire::decode_randk;

using wire::encode_fp16_payload;
using wire::decode_fp16_payload;

using wire::encode_dense;
using wire::decode_dense;

using wire::QsgdPayload;
using wire::qsgd_value;
using wire::qsgd_quantize;
using wire::qsgd_dequantize;
using wire::encode_qsgd;
using wire::decode_qsgd;

using wire::TernPayload;
using wire::terngrad_quantize;
using wire::terngrad_dequantize;
using wire::encode_terngrad;
using wire::decode_terngrad;

}  // namespace apf::compress
