// Byte-level wire formats for every synchronization payload.
//
// The sync strategies (FullSync, the APF family, the strawmen, and the
// compression baselines — the structured/sketched update formats of
// Konečný et al. 2016 and the Gaia/CMFL/QSGD/TernGrad lines of work) move
// their push/pull payloads through these encodings: the sender encodes the
// real values, the receiver decodes the buffer, aggregation consumes the
// decoded values, and every Result::bytes_up/bytes_down charge is the
// `.size()` of an encoded buffer that was actually decoded — measured,
// never modeled. Every decoder rejects malformed input with apf::Error
// (never an OOB read, overflow, or silently wrong tensor), and every
// accepted buffer re-encodes byte-for-byte (the encodings are bijective on
// their valid domain). See docs/WIRE.md for the measured-transport
// invariant.
//
// All formats open with a 4-byte ASCII tag and use little-endian fields
// (see util/bytes.h). Float payloads are transported bit-exactly.
//
//   sparse   "APS1" | dim u32 | count u32 | indices u32[count] (strictly
//            ascending, < dim) | values f32[count]
//   randk    "APR1" | dim u32 | count u32 (<= dim) | seed u64 | scale f32
//            (finite, > 0) | values f32[count]
//   fp16     "APH1" | count u32 | halves u16[count]
//   dense    "APD1" | count u32 | values f32[count]
//   qsgd     "APQ1" | dim u32 | bits u8 (1..16) | norm f32 (finite, >= 0)
//            | packed (1+bits)-bit fields, LSB-first: sign bit then level
//            (level <= 2^bits - 1 always holds; trailing pad bits must be 0)
//   terngrad "APT1" | dim u32 | scale f32 (finite, >= 0) | packed 2-bit
//            codes, LSB-first: 0 -> 0, 1 -> +scale, 2 -> -scale (3 is
//            invalid; trailing pad bits must be 0)
//
// The APM1 masked-update framing lives in wire/masked.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace apf::wire {

// ---------------------------------------------------------------------------
// Sparse index/value payload (Top-k, Gaia pushes).
// ---------------------------------------------------------------------------

struct SparsePayload {
  std::uint32_t dim = 0;
  std::vector<std::uint32_t> indices;  // strictly ascending, < dim
  std::vector<float> values;           // same length as indices
};

/// Indices must be strictly ascending and < dim; values.size() must match.
std::vector<std::uint8_t> encode_sparse(const SparsePayload& payload);

/// Raises apf::Error on any malformed framing (bad tag, truncation, count
/// overflow, out-of-range or non-ascending indices, trailing bytes).
SparsePayload decode_sparse(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Rand-k payload: values only, coordinate set derived from the seed.
// ---------------------------------------------------------------------------

struct RandkPayload {
  std::uint32_t dim = 0;
  std::uint32_t count = 0;  // == values.size(), <= dim
  std::uint64_t seed = 0;   // round-derived selection seed
  float scale = 1.f;        // unbiased scaling factor (finite, > 0)
  std::vector<float> values;
};

std::vector<std::uint8_t> encode_randk(const RandkPayload& payload);
RandkPayload decode_randk(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Half-precision dense payload (QuantizedSync wire format).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_fp16_payload(std::span<const float> values);

/// Decoded through half_to_float; raises apf::Error on malformed framing.
std::vector<float> decode_fp16_payload(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Dense fp32 payload (CMFL full-model pushes, model pulls).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_dense(std::span<const float> values);
std::vector<float> decode_dense(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// QSGD payload: per-coordinate sign + stochastic level, shared L2 norm.
// ---------------------------------------------------------------------------

struct QsgdPayload {
  std::uint32_t dim = 0;
  unsigned bits = 0;                 // 1..16
  float norm = 0.f;                  // finite, >= 0
  std::vector<std::uint8_t> signs;   // dim entries, 0 or 1 (1 = negative)
  std::vector<std::uint32_t> levels; // dim entries, <= 2^bits - 1
};

/// The receiver-side value of one coordinate: sign * norm * level / s.
/// Shared by QsgdCodec::encode_decode and the wire decoder so the in-place
/// codec and the byte path agree bit-for-bit.
float qsgd_value(float norm, std::uint32_t level, unsigned levels,
                 bool negative);

/// Quantizes `update` into a payload, drawing the stochastic rounding from
/// `rng` exactly as QsgdCodec::encode_decode does.
QsgdPayload qsgd_quantize(std::span<const float> update, unsigned bits,
                          Rng& rng);

/// The float vector a receiver reconstructs from `payload`.
std::vector<float> qsgd_dequantize(const QsgdPayload& payload);

std::vector<std::uint8_t> encode_qsgd(const QsgdPayload& payload);
QsgdPayload decode_qsgd(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// TernGrad payload: 2-bit codes {0, +scale, -scale}, shared scale.
// ---------------------------------------------------------------------------

struct TernPayload {
  std::uint32_t dim = 0;
  float scale = 0.f;               // finite, >= 0
  std::vector<std::uint8_t> codes; // dim entries in {0, 1, 2}
};

/// Quantizes `update` drawing from `rng` exactly as
/// TernGradCodec::encode_decode does.
TernPayload terngrad_quantize(std::span<const float> update, Rng& rng);

std::vector<float> terngrad_dequantize(const TernPayload& payload);

std::vector<std::uint8_t> encode_terngrad(const TernPayload& payload);
TernPayload decode_terngrad(std::span<const std::uint8_t> bytes);

}  // namespace apf::wire
