// IEEE-754 half-precision codec.
//
// The paper's APF+Quantization variant (§7.7) transmits parameters as 16-bit
// halves via Tensor.half(). This codec provides the same conversion; the
// QuantizedSync wrapper applies it around any SyncStrategy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace apf::wire {

/// float32 -> float16 bit pattern (round-to-nearest-even, with proper
/// handling of subnormals, infinities and NaN).
std::uint16_t float_to_half(float value);

/// float16 bit pattern -> float32.
float half_to_float(std::uint16_t half);

/// Rounds every element through fp16 (the precision loss a transmit/receive
/// pair would incur).
void quantize_fp16_inplace(std::span<float> values);

/// Encodes to a half-precision payload.
std::vector<std::uint16_t> encode_fp16(std::span<const float> values);

/// Decodes a half-precision payload.
std::vector<float> decode_fp16(std::span<const std::uint16_t> halves);

}  // namespace apf::wire
