#include "wire/masked.h"

#include "util/bytes.h"
#include "util/debug.h"
#include "util/error.h"

namespace apf::wire {

std::vector<float> pack_unfrozen(std::span<const float> full,
                                 const Bitmap& frozen_mask) {
  APF_CHECK(full.size() == frozen_mask.size());
  const std::size_t unfrozen = full.size() - frozen_mask.count();
  std::vector<float> payload;
  payload.reserve(unfrozen);
  for (std::size_t j = 0; j < full.size(); ++j) {
    if (!frozen_mask.get(j)) payload.push_back(full[j]);
  }
  APF_DEBUG_ASSERT_MSG(payload.size() == unfrozen,
                       "packed " << payload.size() << " scalars, mask implies "
                                 << unfrozen);
  return payload;
}

void unpack_unfrozen(std::span<const float> payload, const Bitmap& frozen_mask,
                     std::span<float> full) {
  APF_CHECK(full.size() == frozen_mask.size());
  APF_CHECK_MSG(
      payload.size() == full.size() - frozen_mask.count(),
      "payload size " << payload.size() << " != unfrozen count "
                      << full.size() - frozen_mask.count());
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < full.size(); ++j) {
    if (!frozen_mask.get(j)) full[j] = payload[cursor++];
  }
  APF_DEBUG_ASSERT_MSG(cursor == payload.size(),
                       "consumed " << cursor << " of " << payload.size()
                                   << " payload scalars");
}

namespace {
constexpr std::uint32_t kTagMasked = 0x314D5041;  // "APM1"
}

std::vector<std::uint8_t> encode_masked_update(std::span<const float> full,
                                               const Bitmap& frozen_mask) {
  APF_CHECK(full.size() == frozen_mask.size());
  ByteWriter writer;
  writer.u32(kTagMasked);
  writer.u32(static_cast<std::uint32_t>(full.size()));
  writer.raw(frozen_mask.to_bytes());
  for (const float v : pack_unfrozen(full, frozen_mask)) writer.f32(v);
  return writer.take();
}

MaskedUpdate decode_masked_update(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "masked update");
  const std::uint32_t tag = reader.u32();
  APF_CHECK_MSG(tag == kTagMasked, "masked update: bad tag 0x" << std::hex
                                                               << tag);
  const std::uint32_t dim = reader.u32();
  const std::size_t mask_bytes = (static_cast<std::size_t>(dim) + 7) / 8;
  const auto mask_span = reader.raw(mask_bytes);
  MaskedUpdate out;
  out.frozen_mask = Bitmap::from_bytes(
      dim, std::vector<std::uint8_t>(mask_span.begin(), mask_span.end()));
  const std::size_t payload_count = dim - out.frozen_mask.count();
  reader.require(payload_count * 4);
  out.payload.resize(payload_count);
  for (auto& v : out.payload) v = reader.f32();
  reader.expect_exhausted();
  return out;
}

}  // namespace apf::wire
