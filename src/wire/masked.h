// Masked pack/unpack — the wire format of APF synchronization.
//
// The paper's APF_Manager transmits only unfrozen scalars, packed into a
// compact tensor with masked_select and restored with masked_fill (Alg. 1
// lines 4/6). These helpers are that wire path: pack() extracts the values
// at clear mask bits in index order; unpack() scatters a compact payload
// back. The ApfManager aggregates actual packed payloads, so the simulation
// moves exactly the bytes it charges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitmap.h"

namespace apf::wire {

/// Values of `full` at positions where `frozen_mask` is clear, in ascending
/// index order (the unfrozen payload).
std::vector<float> pack_unfrozen(std::span<const float> full,
                                 const Bitmap& frozen_mask);

/// Scatters `payload` back into `full` at the clear positions of
/// `frozen_mask`; frozen positions are left untouched. payload.size() must
/// equal the number of clear bits.
void unpack_unfrozen(std::span<const float> payload, const Bitmap& frozen_mask,
                     std::span<float> full);

// ---------------------------------------------------------------------------
// Framed wire format for one masked update (what a client's upload or the
// §9 server-side-mask pull actually looks like on the wire):
//
//   "APM1" | dim u32 | mask bytes ((dim+7)/8, Bitmap::to_bytes layout,
//   stray tail bits rejected) | payload f32[dim - popcount(mask)]
//
// Fields are little-endian (util/bytes.h); float payloads are transported
// bit-exactly. The encoding is bijective on its valid domain: any buffer
// decode_masked_update accepts re-encodes byte-for-byte, and anything else
// raises apf::Error — never an OOB read or a silently wrong tensor.
// ---------------------------------------------------------------------------

struct MaskedUpdate {
  Bitmap frozen_mask;
  std::vector<float> payload;  // unfrozen scalars, ascending index order
};

/// Frames the unfrozen scalars of `full` plus the mask itself.
std::vector<std::uint8_t> encode_masked_update(std::span<const float> full,
                                               const Bitmap& frozen_mask);

/// Parses and fully validates a framed masked update.
MaskedUpdate decode_masked_update(std::span<const std::uint8_t> bytes);

}  // namespace apf::wire
