#include "wire/wire.h"

#include <algorithm>
#include <cmath>

#include "wire/quantize.h"
#include "util/bytes.h"
#include "util/error.h"

namespace apf::wire {

namespace {

constexpr std::uint32_t kTagSparse = 0x31535041;  // "APS1"
constexpr std::uint32_t kTagRandk = 0x31525041;   // "APR1"
constexpr std::uint32_t kTagFp16 = 0x31485041;    // "APH1"
constexpr std::uint32_t kTagDense = 0x31445041;   // "APD1"
constexpr std::uint32_t kTagQsgd = 0x31515041;    // "APQ1"
constexpr std::uint32_t kTagTern = 0x31545041;    // "APT1"

void check_tag(ByteReader& reader, std::uint32_t expected,
               const char* format) {
  const std::uint32_t tag = reader.u32();
  APF_CHECK_MSG(tag == expected, format << ": bad tag 0x" << std::hex << tag);
}

/// Reads `count` f32 values after verifying the bytes actually exist, so a
/// lying count field cannot trigger a huge allocation.
std::vector<float> read_f32_array(ByteReader& reader, std::size_t count) {
  reader.require(count * 4);
  std::vector<float> out(count);
  for (auto& v : out) v = reader.f32();
  return out;
}

void write_f32_array(ByteWriter& writer, std::span<const float> values) {
  for (float v : values) writer.f32(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// sparse
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_sparse(const SparsePayload& payload) {
  APF_CHECK_MSG(payload.indices.size() == payload.values.size(),
                "sparse encode: " << payload.indices.size() << " indices vs "
                                  << payload.values.size() << " values");
  APF_CHECK(payload.indices.size() <= payload.dim);
  ByteWriter writer;
  writer.u32(kTagSparse);
  writer.u32(payload.dim);
  writer.u32(static_cast<std::uint32_t>(payload.indices.size()));
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint32_t idx : payload.indices) {
    APF_CHECK_MSG(idx < payload.dim, "sparse encode: index " << idx
                                                             << " >= dim "
                                                             << payload.dim);
    APF_CHECK_MSG(first || idx > prev,
                  "sparse encode: indices not strictly ascending at " << idx);
    first = false;
    prev = idx;
    writer.u32(idx);
  }
  write_f32_array(writer, payload.values);
  return writer.take();
}

SparsePayload decode_sparse(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "sparse payload");
  check_tag(reader, kTagSparse, "sparse payload");
  SparsePayload out;
  out.dim = reader.u32();
  const std::uint32_t count = reader.u32();
  APF_CHECK_MSG(count <= out.dim, "sparse payload: count " << count
                                                           << " > dim "
                                                           << out.dim);
  reader.require(static_cast<std::size_t>(count) * 8);  // indices + values
  out.indices.resize(count);
  std::uint64_t prev = 0;
  bool first = true;
  for (auto& idx : out.indices) {
    idx = reader.u32();
    APF_CHECK_MSG(idx < out.dim, "sparse payload: index " << idx << " >= dim "
                                                          << out.dim);
    APF_CHECK_MSG(first || idx > prev,
                  "sparse payload: indices not strictly ascending at " << idx);
    first = false;
    prev = idx;
  }
  out.values = read_f32_array(reader, count);
  reader.expect_exhausted();
  return out;
}

// ---------------------------------------------------------------------------
// randk
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_randk(const RandkPayload& payload) {
  APF_CHECK(payload.count == payload.values.size());
  APF_CHECK(payload.count <= payload.dim);
  APF_CHECK_MSG(std::isfinite(payload.scale) && payload.scale > 0.f,
                "randk encode: bad scale " << payload.scale);
  ByteWriter writer;
  writer.u32(kTagRandk);
  writer.u32(payload.dim);
  writer.u32(payload.count);
  writer.u64(payload.seed);
  writer.f32(payload.scale);
  write_f32_array(writer, payload.values);
  return writer.take();
}

RandkPayload decode_randk(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "randk payload");
  check_tag(reader, kTagRandk, "randk payload");
  RandkPayload out;
  out.dim = reader.u32();
  out.count = reader.u32();
  APF_CHECK_MSG(out.count <= out.dim, "randk payload: count " << out.count
                                                              << " > dim "
                                                              << out.dim);
  out.seed = reader.u64();
  out.scale = reader.f32();
  APF_CHECK_MSG(std::isfinite(out.scale) && out.scale > 0.f,
                "randk payload: bad scale " << out.scale);
  out.values = read_f32_array(reader, out.count);
  reader.expect_exhausted();
  return out;
}

// ---------------------------------------------------------------------------
// fp16 / dense
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_fp16_payload(std::span<const float> values) {
  ByteWriter writer;
  writer.u32(kTagFp16);
  writer.u32(static_cast<std::uint32_t>(values.size()));
  for (const float v : values) writer.u16(float_to_half(v));
  return writer.take();
}

std::vector<float> decode_fp16_payload(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "fp16 payload");
  check_tag(reader, kTagFp16, "fp16 payload");
  const std::uint32_t count = reader.u32();
  reader.require(static_cast<std::size_t>(count) * 2);
  std::vector<float> out(count);
  for (auto& v : out) v = half_to_float(reader.u16());
  reader.expect_exhausted();
  return out;
}

std::vector<std::uint8_t> encode_dense(std::span<const float> values) {
  ByteWriter writer;
  writer.u32(kTagDense);
  writer.u32(static_cast<std::uint32_t>(values.size()));
  write_f32_array(writer, values);
  return writer.take();
}

std::vector<float> decode_dense(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "dense payload");
  check_tag(reader, kTagDense, "dense payload");
  const std::uint32_t count = reader.u32();
  std::vector<float> out = read_f32_array(reader, count);
  reader.expect_exhausted();
  return out;
}

// ---------------------------------------------------------------------------
// qsgd
// ---------------------------------------------------------------------------

float qsgd_value(float norm, std::uint32_t level, unsigned levels,
                 bool negative) {
  const double q = static_cast<double>(norm) * level /
                   static_cast<double>(levels);
  return static_cast<float>(negative ? -q : q);
}

QsgdPayload qsgd_quantize(std::span<const float> update, unsigned bits,
                          Rng& rng) {
  APF_CHECK(bits >= 1 && bits <= 16);
  QsgdPayload out;
  out.dim = static_cast<std::uint32_t>(update.size());
  out.bits = bits;
  out.signs.assign(update.size(), 0);
  out.levels.assign(update.size(), 0);
  double norm_sq = 0.0;
  for (const float v : update) norm_sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(norm_sq);
  out.norm = static_cast<float>(norm);
  if (norm == 0.0) return out;
  const double s = static_cast<double>((1u << bits) - 1);
  for (std::size_t j = 0; j < update.size(); ++j) {
    const double ratio =
        std::fabs(static_cast<double>(update[j])) / norm * s;
    const double lower = std::floor(ratio);
    const double level = lower + (rng.bernoulli(ratio - lower) ? 1.0 : 0.0);
    out.levels[j] = static_cast<std::uint32_t>(level);
    out.signs[j] = update[j] < 0 ? 1 : 0;
  }
  return out;
}

std::vector<float> qsgd_dequantize(const QsgdPayload& payload) {
  const unsigned levels = (1u << payload.bits) - 1;
  std::vector<float> out(payload.dim);
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = qsgd_value(payload.norm, payload.levels[j], levels,
                        payload.signs[j] != 0);
  }
  return out;
}

namespace {

/// LSB-first bit packing shared by the qsgd and terngrad codecs.
class BitWriter {
 public:
  void put(std::uint32_t value, unsigned width) {
    for (unsigned b = 0; b < width; ++b) {
      if (bit_ == 0) bytes_.push_back(0);
      if ((value >> b) & 1u) {
        bytes_.back() |= static_cast<std::uint8_t>(1u << bit_);
      }
      bit_ = (bit_ + 1) % 8;
    }
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned bit_ = 0;
};

class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> bytes, const char* context)
      : bytes_(bytes), context_(context) {}

  std::uint32_t get(unsigned width) {
    std::uint32_t value = 0;
    for (unsigned b = 0; b < width; ++b) {
      const std::size_t byte = cursor_ / 8;
      APF_CHECK_MSG(byte < bytes_.size(), context_ << ": bit stream truncated");
      if ((bytes_[byte] >> (cursor_ % 8)) & 1u) value |= 1u << b;
      ++cursor_;
    }
    return value;
  }

  /// Every bit after the cursor (pad bits) must be zero, so the packing is
  /// bijective and mutated pad bits are rejected instead of ignored.
  void expect_zero_padding() const {
    for (std::size_t c = cursor_; c < bytes_.size() * 8; ++c) {
      APF_CHECK_MSG(((bytes_[c / 8] >> (c % 8)) & 1u) == 0,
                    context_ << ": nonzero pad bit " << c);
    }
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  const char* context_;
};

std::size_t packed_bytes(std::size_t dim, unsigned bits_per_entry) {
  return (dim * bits_per_entry + 7) / 8;
}

}  // namespace

std::vector<std::uint8_t> encode_qsgd(const QsgdPayload& payload) {
  APF_CHECK(payload.bits >= 1 && payload.bits <= 16);
  APF_CHECK(payload.signs.size() == payload.dim);
  APF_CHECK(payload.levels.size() == payload.dim);
  APF_CHECK_MSG(std::isfinite(payload.norm) && payload.norm >= 0.f,
                "qsgd encode: bad norm " << payload.norm);
  const std::uint32_t max_level = (1u << payload.bits) - 1;
  ByteWriter writer;
  writer.u32(kTagQsgd);
  writer.u32(payload.dim);
  writer.u8(static_cast<std::uint8_t>(payload.bits));
  writer.f32(payload.norm);
  BitWriter bit_writer;
  for (std::size_t j = 0; j < payload.dim; ++j) {
    APF_CHECK(payload.signs[j] <= 1);
    APF_CHECK_MSG(payload.levels[j] <= max_level,
                  "qsgd encode: level " << payload.levels[j] << " > "
                                        << max_level);
    bit_writer.put(payload.signs[j], 1);
    bit_writer.put(payload.levels[j], payload.bits);
  }
  const auto packed = bit_writer.take();
  writer.raw(packed);
  return writer.take();
}

QsgdPayload decode_qsgd(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "qsgd payload");
  check_tag(reader, kTagQsgd, "qsgd payload");
  QsgdPayload out;
  out.dim = reader.u32();
  out.bits = reader.u8();
  APF_CHECK_MSG(out.bits >= 1 && out.bits <= 16,
                "qsgd payload: bad bit width " << out.bits);
  out.norm = reader.f32();
  APF_CHECK_MSG(std::isfinite(out.norm) && out.norm >= 0.f,
                "qsgd payload: bad norm " << out.norm);
  const std::size_t expected =
      packed_bytes(out.dim, out.bits + 1);
  APF_CHECK_MSG(reader.remaining() == expected,
                "qsgd payload: " << reader.remaining()
                                 << " packed byte(s), expected " << expected);
  BitReader bit_reader(reader.raw(expected), "qsgd payload");
  out.signs.resize(out.dim);
  out.levels.resize(out.dim);
  for (std::size_t j = 0; j < out.dim; ++j) {
    out.signs[j] = static_cast<std::uint8_t>(bit_reader.get(1));
    out.levels[j] = bit_reader.get(out.bits);
  }
  bit_reader.expect_zero_padding();
  reader.expect_exhausted();
  return out;
}

// ---------------------------------------------------------------------------
// terngrad
// ---------------------------------------------------------------------------

TernPayload terngrad_quantize(std::span<const float> update, Rng& rng) {
  TernPayload out;
  out.dim = static_cast<std::uint32_t>(update.size());
  out.codes.assign(update.size(), 0);
  float scale = 0.f;
  for (const float v : update) scale = std::max(scale, std::fabs(v));
  out.scale = scale;
  if (scale == 0.f) return out;
  for (std::size_t j = 0; j < update.size(); ++j) {
    const double p = std::fabs(update[j]) / scale;
    if (rng.bernoulli(p)) {
      out.codes[j] = update[j] < 0 ? 2 : 1;
    }
  }
  return out;
}

std::vector<float> terngrad_dequantize(const TernPayload& payload) {
  std::vector<float> out(payload.dim, 0.f);
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (payload.codes[j] == 1) out[j] = payload.scale;
    if (payload.codes[j] == 2) out[j] = -payload.scale;
  }
  return out;
}

std::vector<std::uint8_t> encode_terngrad(const TernPayload& payload) {
  APF_CHECK(payload.codes.size() == payload.dim);
  APF_CHECK_MSG(std::isfinite(payload.scale) && payload.scale >= 0.f,
                "terngrad encode: bad scale " << payload.scale);
  ByteWriter writer;
  writer.u32(kTagTern);
  writer.u32(payload.dim);
  writer.f32(payload.scale);
  BitWriter bit_writer;
  for (const std::uint8_t code : payload.codes) {
    APF_CHECK_MSG(code <= 2, "terngrad encode: bad code "
                                 << static_cast<int>(code));
    bit_writer.put(code, 2);
  }
  writer.raw(bit_writer.take());
  return writer.take();
}

TernPayload decode_terngrad(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes, "terngrad payload");
  check_tag(reader, kTagTern, "terngrad payload");
  TernPayload out;
  out.dim = reader.u32();
  out.scale = reader.f32();
  APF_CHECK_MSG(std::isfinite(out.scale) && out.scale >= 0.f,
                "terngrad payload: bad scale " << out.scale);
  const std::size_t expected = packed_bytes(out.dim, 2);
  APF_CHECK_MSG(reader.remaining() == expected,
                "terngrad payload: " << reader.remaining()
                                     << " packed byte(s), expected "
                                     << expected);
  BitReader bit_reader(reader.raw(expected), "terngrad payload");
  out.codes.resize(out.dim);
  for (auto& code : out.codes) {
    code = static_cast<std::uint8_t>(bit_reader.get(2));
    APF_CHECK_MSG(code <= 2, "terngrad payload: invalid code "
                                 << static_cast<int>(code));
  }
  bit_reader.expect_zero_padding();
  reader.expect_exhausted();
  return out;
}

}  // namespace apf::wire
