#include "wire/quantize.h"

#include <bit>
#include <cmath>

namespace apf::wire {

std::uint16_t float_to_half(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (((bits >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN.
    const std::uint16_t payload = mantissa ? 0x200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | payload);
  }
  if (exponent >= 31) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exponent <= 0) {
    // Subnormal half (or zero).
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exponent;
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normalized half with round-to-nearest-even on the 13 dropped bits.
  std::uint32_t half =
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  const std::uint32_t rem = mantissa & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(half);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;

  if (exponent == 0x1Fu) {
    // Inf / NaN.
    return std::bit_cast<float>(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return std::bit_cast<float>(sign);
    // Subnormal: normalize.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x400u) == 0);
    mantissa &= 0x3FFu;
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return std::bit_cast<float>(sign | (exp32 << 23) | (mantissa << 13));
  }
  const std::uint32_t exp32 = exponent - 15 + 127;
  return std::bit_cast<float>(sign | (exp32 << 23) | (mantissa << 13));
}

void quantize_fp16_inplace(std::span<float> values) {
  for (auto& v : values) v = half_to_float(float_to_half(v));
}

std::vector<std::uint16_t> encode_fp16(std::span<const float> values) {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = float_to_half(values[i]);
  return out;
}

std::vector<float> decode_fp16(std::span<const std::uint16_t> halves) {
  std::vector<float> out(halves.size());
  for (std::size_t i = 0; i < halves.size(); ++i)
    out[i] = half_to_float(halves[i]);
  return out;
}

}  // namespace apf::wire
