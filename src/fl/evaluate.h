// Model evaluation helpers.
#pragma once

#include "data/dataset.h"
#include "nn/module.h"

namespace apf::fl {

/// Test accuracy of `module` over the whole dataset, evaluated in eval mode
/// (BatchNorm running stats) with mini-batches of `batch_size`. Restores the
/// module's previous train/eval mode before returning.
double evaluate_accuracy(nn::Module& module, const data::Dataset& dataset,
                         std::size_t batch_size = 128);

/// Mean cross-entropy loss over the dataset (eval mode).
double evaluate_loss(nn::Module& module, const data::Dataset& dataset,
                     std::size_t batch_size = 128);

}  // namespace apf::fl
