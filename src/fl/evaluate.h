// Model evaluation helpers.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"
#include "util/thread_pool.h"

namespace apf::fl {

/// Exact number of rows whose argmax prediction equals the label, summed as
/// integers over the whole dataset (no float round-trip).
std::size_t count_correct(nn::Module& module, const data::Dataset& dataset,
                          std::size_t batch_size = 128);

/// Test accuracy of `module` over the whole dataset, evaluated in eval mode
/// (BatchNorm running stats) with mini-batches of `batch_size`. Restores the
/// module's previous train/eval mode before returning. Implemented as
/// count_correct / dataset.size(), so the result is exact.
double evaluate_accuracy(nn::Module& module, const data::Dataset& dataset,
                         std::size_t batch_size = 128);

/// Mean cross-entropy loss over the dataset (eval mode).
double evaluate_loss(nn::Module& module, const data::Dataset& dataset,
                     std::size_t batch_size = 128);

/// Correct-count and loss sums accumulated over the dataset in one pass.
struct EvalSums {
  std::size_t correct = 0;   // exact argmax matches
  double loss_sum = 0.0;     // sum over samples of per-sample mean-batch loss
  std::size_t total = 0;     // samples seen
};

/// Parallel single-pass evaluation over `replicas`, which must be
/// bit-identical copies of the model (same params and buffers); replica r
/// processes batches r, r + R, r + 2R, ... so no module is shared between
/// lanes. Per-batch results are recombined in batch-index order — correct
/// counts are integers and the loss reduction is ordered — so the result is
/// bit-identical for any replica count, including 1.
EvalSums evaluate_sums_parallel(std::span<nn::Module* const> replicas,
                                const data::Dataset& dataset,
                                std::size_t batch_size,
                                util::ThreadPool& pool);

}  // namespace apf::fl
