#include "fl/sync_strategy.h"

#include <cmath>

#include "util/error.h"
#include "wire/wire.h"

namespace apf::fl {

void SyncStrategyBase::init(std::span<const float> initial_params,
                            std::size_t num_clients) {
  APF_CHECK(!initial_params.empty());
  APF_CHECK(num_clients > 0);
  global_.assign(initial_params.begin(), initial_params.end());
  num_clients_ = num_clients;
}

void SyncStrategyBase::require_round_inputs(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) const {
  APF_CHECK_MSG(!global_.empty(), "synchronize() before init()");
  APF_CHECK(!client_params.empty());
  APF_CHECK(client_params.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    APF_CHECK_MSG(std::isfinite(w), "aggregation weight is not finite");
    APF_CHECK(w >= 0.0);
    total += w;
  }
  APF_CHECK_MSG(total > 0.0, "all aggregation weights are zero");
  const std::size_t dim = global_.size();
  for (std::size_t i = 0; i < client_params.size(); ++i) {
    APF_CHECK_MSG(client_params[i].size() == dim,
                  "client " << i << " update size " << client_params[i].size()
                            << " != model dim " << dim);
    if (weights[i] == 0.0) continue;
    for (std::size_t j = 0; j < dim; ++j) {
      APF_CHECK_MSG(std::isfinite(client_params[i][j]),
                    "client " << i << " update is not finite at index " << j);
    }
  }
}

void SyncStrategyBase::weighted_average(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights, std::vector<float>& out) {
  APF_CHECK(!client_params.empty());
  APF_CHECK(client_params.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    APF_CHECK(w >= 0.0);
    total += w;
  }
  APF_CHECK_MSG(total > 0.0, "all aggregation weights are zero");
  const std::size_t dim = client_params.front().size();
  out.assign(dim, 0.f);
  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < client_params.size(); ++i) {
    if (weights[i] == 0.0) continue;
    APF_CHECK(client_params[i].size() == dim);
    const double w = weights[i] / total;
    const auto& params = client_params[i];
    for (std::size_t j = 0; j < dim; ++j) acc[j] += w * params[j];
  }
  for (std::size_t j = 0; j < dim; ++j) out[j] = static_cast<float>(acc[j]);
}

SyncStrategy::Result FullSync::synchronize(
    std::size_t /*round*/, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  Result result;
  result.bytes_up.assign(n, 0.0);
  result.bytes_down.assign(n, 0.0);
  // Push: every client uploads its full model as a dense wire buffer; the
  // server aggregates the decoded values (fp32 round-trips bit-exactly).
  std::vector<std::vector<float>> uploads(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::uint8_t> buf = wire::encode_dense(client_params[i]);
    uploads[i] = wire::decode_dense(buf);
    result.bytes_up[i] = static_cast<double>(buf.size());
  }
  // Average into a local first: passing global_ as the output would zero it
  // before weighted_average's own checks run, making a rejection non-atomic.
  std::vector<float> new_global;
  weighted_average(uploads, weights, new_global);
  global_ = std::move(new_global);
  // Pull: one dense model buffer, decoded by every client.
  const std::vector<std::uint8_t> down = wire::encode_dense(global_);
  for (std::size_t i = 0; i < n; ++i) {
    client_params[i] = wire::decode_dense(down);
    result.bytes_down[i] = static_cast<double>(down.size());
  }
  return result;
}

}  // namespace apf::fl
