#include "fl/sync_strategy.h"

#include <cmath>

#include "util/error.h"
#include "wire/wire.h"

namespace apf::fl {

void SyncStrategyBase::init(std::span<const float> initial_params,
                            std::size_t num_clients) {
  APF_CHECK(!initial_params.empty());
  APF_CHECK(num_clients > 0);
  global_.assign(initial_params.begin(), initial_params.end());
  num_clients_ = num_clients;
}

void SyncStrategyBase::require_round_inputs(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) const {
  APF_CHECK_MSG(!global_.empty(), "synchronize() before init()");
  APF_CHECK(!client_params.empty());
  APF_CHECK(client_params.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    APF_CHECK_MSG(std::isfinite(w), "aggregation weight is not finite");
    APF_CHECK(w >= 0.0);
    total += w;
  }
  APF_CHECK_MSG(total > 0.0, "all aggregation weights are zero");
  const std::size_t dim = global_.size();
  for (std::size_t i = 0; i < client_params.size(); ++i) {
    APF_CHECK_MSG(client_params[i].size() == dim,
                  "client " << i << " update size " << client_params[i].size()
                            << " != model dim " << dim);
    if (weights[i] == 0.0) continue;
    for (std::size_t j = 0; j < dim; ++j) {
      APF_CHECK_MSG(std::isfinite(client_params[i][j]),
                    "client " << i << " update is not finite at index " << j);
    }
  }
}

void SyncStrategyBase::weighted_average(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights, std::vector<float>& out) {
  APF_CHECK(!client_params.empty());
  APF_CHECK(client_params.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    APF_CHECK(w >= 0.0);
    total += w;
  }
  APF_CHECK_MSG(total > 0.0, "all aggregation weights are zero");
  const std::size_t dim = client_params.front().size();
  out.assign(dim, 0.f);
  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < client_params.size(); ++i) {
    if (weights[i] == 0.0) continue;
    APF_CHECK(client_params[i].size() == dim);
    const double w = weights[i] / total;
    const auto& params = client_params[i];
    for (std::size_t j = 0; j < dim; ++j) acc[j] += w * params[j];
  }
  for (std::size_t j = 0; j < dim; ++j) out[j] = static_cast<float>(acc[j]);
}

SyncStrategy::Result FullSync::synchronize(
    RoundId round, std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  // Everything is validated before any state moves (rejection stays
  // atomic); after this, none of the stream hooks below can throw.
  require_round_inputs(client_params, weights);
  const std::size_t n = client_params.size();
  double weight_total = 0.0;
  for (const double w : weights) weight_total += w;
  Result result;
  result.bytes_up.assign(n, ByteCount(0));
  result.bytes_down.assign(n, ByteCount(0));
  result.frames_up.resize(n);
  // Push: every client uploads its full model as a dense wire buffer; each
  // decoded frame folds straight into the streaming aggregate (fp32
  // round-trips bit-exactly), so the server never stages per-client copies.
  begin_fold(round);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> buf = encode_push(ClientId(i), client_params[i]);
    result.bytes_up[i] = ByteCount(buf.size());
    if (weights[i] > 0.0) {
      fold_push(ClientId(i), buf, weights[i] / weight_total);
    }
    result.frames_up[i] = std::move(buf);
  }
  // Pull: one dense model buffer, decoded by every client.
  std::vector<std::uint8_t> down = finish_fold();
  for (std::size_t i = 0; i < n; ++i) {
    apply_pull(down, client_params[i]);
    result.bytes_down[i] = ByteCount(down.size());
  }
  result.broadcast_frame = std::move(down);
  return result;
}

std::vector<std::uint8_t> FullSync::encode_push(ClientId /*client*/,
                                                std::span<const float> params) {
  APF_CHECK_MSG(!global_.empty(), "encode_push before init()");
  APF_CHECK(params.size() == global_.size());
  return wire::encode_dense(params);
}

void FullSync::begin_fold(RoundId /*round*/) {
  APF_CHECK_MSG(!global_.empty(), "begin_fold before init()");
  agg_.emplace(global_.size());
}

void FullSync::fold_push(ClientId client,
                         std::span<const std::uint8_t> frame,
                         double normalized_weight) {
  APF_CHECK_MSG(agg_.has_value(), "fold_push before begin_fold()");
  const std::vector<float> values = wire::decode_dense(frame);
  agg_->fold(client, values, normalized_weight);
}

std::vector<std::uint8_t> FullSync::finish_fold() {
  APF_CHECK_MSG(agg_.has_value(), "finish_fold before begin_fold()");
  APF_CHECK_MSG(agg_->folded() > 0, "finish_fold with no folded pushes");
  std::vector<float> new_global(global_.size());
  agg_->finish_weighted(new_global);
  global_ = std::move(new_global);
  agg_.reset();
  return wire::encode_dense(global_);
}

void FullSync::apply_pull(std::span<const std::uint8_t> frame,
                          std::vector<float>& params) const {
  // Decode to a local first: a wrong-dimension frame must throw without
  // clobbering the caller's parameters (rejection is atomic).
  std::vector<float> decoded = wire::decode_dense(frame);
  APF_CHECK(decoded.size() == global_.size());
  params = std::move(decoded);
}

}  // namespace apf::fl
