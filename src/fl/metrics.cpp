#include "fl/metrics.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace apf::fl {

// lint-apf: no-input-checks(pure formatter; any SimulationResult is valid)
void write_round_csv(const SimulationResult& result, std::ostream& os) {
  os << "round,test_accuracy,train_loss,bytes_per_client,"
        "cumulative_bytes_per_client,frozen_fraction,round_seconds,"
        "cumulative_seconds\n";
  os << std::setprecision(8);
  for (const auto& r : result.rounds) {
    os << r.round << ',';
    if (r.test_accuracy >= 0.0) os << r.test_accuracy;
    os << ',' << r.train_loss << ',' << r.bytes_per_client << ','
       << r.cumulative_bytes_per_client << ',' << r.frozen_fraction << ','
       << r.round_seconds << ',' << r.cumulative_seconds << '\n';
  }
}

void write_round_csv_file(const SimulationResult& result,
                          const std::string& path) {
  std::ofstream os(path);
  APF_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_round_csv(result, os);
}

// lint-apf: no-input-checks(pure formatter; any SimulationResult is valid)
std::string summarize(const SimulationResult& result) {
  std::ostringstream oss;
  oss << "best=" << TablePrinter::fmt(result.best_accuracy, 3)
      << " final=" << TablePrinter::fmt(result.final_accuracy, 3)
      << " bytes/client="
      << TablePrinter::fmt_bytes(result.total_bytes_per_client)
      << " sim_time=" << TablePrinter::fmt(result.total_seconds, 1) << "s"
      << " avg_frozen="
      << TablePrinter::fmt_percent(result.mean_frozen_fraction);
  return oss.str();
}

}  // namespace apf::fl
