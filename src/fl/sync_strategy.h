// Synchronization strategy interface.
//
// A SyncStrategy decides, at each communication round, what each client
// transmits, how the server aggregates it, and what each client's model is
// afterwards. Vanilla FedAvg (FullSync) ships the full parameter vector both
// ways; APF, the strawmen and the sparsification baselines ship less. Byte
// accounting is the strategy's responsibility because only it knows what got
// transmitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "transport/streaming.h"
#include "util/bitmap.h"
#include "util/ids.h"

namespace apf::fl {

// Strong id/byte types (util/ids.h): every client id, round id, sequence
// number and byte count crossing the strategy interface is typed, so
// transposed arguments are compile errors (apf_ast_lint.py `strong-type`
// rule keeps bare integers from creeping back in).
using util::ByteCount;
using util::ClientId;
using util::RoundId;
using util::SeqNo;

/// Optional frame-streaming capability (see docs/TRANSPORT.md).
///
/// A strategy that implements StreamSync exposes its round as five transport
/// hooks so a driver can run it over a message bus without ever staging
/// per-client vectors on the server: encode each client's push frame, fold
/// arriving frames one at a time (strictly ascending client id — that order
/// IS the determinism guarantee), finish into the broadcast pull frame, and
/// rebuild a client from it. synchronize() on such a strategy is just the
/// batch driver over these hooks, so both paths are bit-identical by
/// construction.
class StreamSync {
 public:
  virtual ~StreamSync() = default;

  /// Client side: the push frame for `client` given its post-training
  /// parameters. Valid any time between rounds (the round's mask/state is
  /// whatever the last finish_fold() left behind).
  virtual std::vector<std::uint8_t> encode_push(
      ClientId client, std::span<const float> params) = 0;

  /// Server side: arms the fold for `round` (1-based).
  virtual void begin_fold(RoundId round) = 0;

  /// Server side: folds one arriving push frame. `normalized_weight` is the
  /// client's aggregation weight divided by the round's weight total.
  /// Clients must fold in strictly ascending id order.
  virtual void fold_push(ClientId client,
                         std::span<const std::uint8_t> frame,
                         double normalized_weight) = 0;

  /// Server side: commits the fold into the global model, advances any
  /// per-round strategy state, and returns the broadcast pull frame.
  virtual std::vector<std::uint8_t> finish_fold() = 0;

  /// Client side: rebuilds `params` from the pull frame returned by the
  /// round's finish_fold().
  virtual void apply_pull(std::span<const std::uint8_t> frame,
                          std::vector<float>& params) const = 0;
};

class SyncStrategy {
 public:
  virtual ~SyncStrategy() = default;

  /// Per-round synchronization accounting. Byte figures are measured
  /// ByteCounts — payload.size() of a real wire buffer, never a model.
  struct Result {
    std::vector<ByteCount> bytes_up;    // per client, this round
    std::vector<ByteCount> bytes_down;  // per client, this round
    double frozen_fraction = 0.0;       // of scalars excluded from sync

    // -- captured transport frames ----------------------------------------
    // A strategy that captures its traffic fills frames_up with exactly one
    // entry per client (empty payload = that client sent nothing) and
    // either broadcast_frame (one shared pull payload) or frames_down (a
    // distinct pull per client). The runner routes captured frames through
    // the transport bus and APF_CHECKs every payload size against the
    // declared byte counts; when frames_up is empty (a third-party strategy
    // that only reports sizes) it synthesizes placeholder frames of the
    // declared sizes instead, so byte accounting is unchanged either way.
    std::vector<std::vector<std::uint8_t>> frames_up;
    std::vector<std::vector<std::uint8_t>> frames_down;
    std::vector<std::uint8_t> broadcast_frame;
  };

  /// Called once before the first round with the initial global model.
  virtual void init(std::span<const float> initial_params,
                    std::size_t num_clients) = 0;

  /// Executes one synchronization. `client_params[i]` holds client i's
  /// flattened parameters after local training and, on return, its post-sync
  /// parameters. `weights[i]` is the aggregation weight (0 drops a client).
  /// `round` is 1-based.
  virtual Result synchronize(RoundId round,
                             std::vector<std::vector<float>>& client_params,
                             const std::vector<double>& weights) = 0;

  /// Server-side view of the model (used for evaluation).
  virtual std::span<const float> global_params() const = 0;

  /// Mask of parameters currently frozen on clients, or nullptr if the
  /// strategy does not freeze. The runner pins these scalars to
  /// frozen_anchor() after every local step (paper Alg. 1, line 2).
  virtual const Bitmap* frozen_mask() const { return nullptr; }

  /// Values frozen parameters are pinned to (valid when frozen_mask() is
  /// non-null; same layout as the flat parameter vector).
  virtual std::span<const float> frozen_anchor() const { return {}; }

  /// The strategy's streaming capability, or nullptr when it only supports
  /// the batch synchronize() path.
  virtual StreamSync* stream_sync() { return nullptr; }

  virtual std::string name() const = 0;
};

/// Shared plumbing: stores the global model and client count.
class SyncStrategyBase : public SyncStrategy {
 public:
  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;

  std::span<const float> global_params() const override { return global_; }

 protected:
  /// Validates one round's inputs against the registered model BEFORE any
  /// state is mutated, so a rejection is atomic: client/weight counts match,
  /// every client vector has the model dimension (participant or not — a
  /// zero-weight client with a short vector must not be written out of
  /// bounds later), every weight is finite and non-negative with a positive
  /// total, and every participating (weight > 0) payload is finite. Throws
  /// apf::Error; strategies call this first in synchronize().
  void require_round_inputs(
      const std::vector<std::vector<float>>& client_params,
      const std::vector<double>& weights) const;

  /// Weighted average of client params into `out` (normalized weights).
  static void weighted_average(
      const std::vector<std::vector<float>>& client_params,
      const std::vector<double>& weights, std::vector<float>& out);

  std::vector<float> global_;
  std::size_t num_clients_ = 0;
};

/// Vanilla FedAvg: full model both directions every round. Implements
/// StreamSync — synchronize() is the batch driver over the stream hooks, so
/// the bus path and the in-memory path are one code path.
class FullSync : public SyncStrategyBase, public StreamSync {
 public:
  Result synchronize(RoundId round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;

  StreamSync* stream_sync() override { return this; }
  std::vector<std::uint8_t> encode_push(
      ClientId client, std::span<const float> params) override;
  void begin_fold(RoundId round) override;
  void fold_push(ClientId client, std::span<const std::uint8_t> frame,
                 double normalized_weight) override;
  std::vector<std::uint8_t> finish_fold() override;
  void apply_pull(std::span<const std::uint8_t> frame,
                  std::vector<float>& params) const override;

  std::string name() const override { return "FedAvg"; }

 private:
  std::optional<transport::StreamingAggregator> agg_;
};

}  // namespace apf::fl
