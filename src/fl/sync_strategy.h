// Synchronization strategy interface.
//
// A SyncStrategy decides, at each communication round, what each client
// transmits, how the server aggregates it, and what each client's model is
// afterwards. Vanilla FedAvg (FullSync) ships the full parameter vector both
// ways; APF, the strawmen and the sparsification baselines ship less. Byte
// accounting is the strategy's responsibility because only it knows what got
// transmitted.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/bitmap.h"

namespace apf::fl {

class SyncStrategy {
 public:
  virtual ~SyncStrategy() = default;

  /// Per-round synchronization accounting.
  struct Result {
    std::vector<double> bytes_up;    // per client, this round
    std::vector<double> bytes_down;  // per client, this round
    double frozen_fraction = 0.0;    // of scalars excluded from sync
  };

  /// Called once before the first round with the initial global model.
  virtual void init(std::span<const float> initial_params,
                    std::size_t num_clients) = 0;

  /// Executes one synchronization. `client_params[i]` holds client i's
  /// flattened parameters after local training and, on return, its post-sync
  /// parameters. `weights[i]` is the aggregation weight (0 drops a client).
  /// `round` is 1-based.
  virtual Result synchronize(std::size_t round,
                             std::vector<std::vector<float>>& client_params,
                             const std::vector<double>& weights) = 0;

  /// Server-side view of the model (used for evaluation).
  virtual std::span<const float> global_params() const = 0;

  /// Mask of parameters currently frozen on clients, or nullptr if the
  /// strategy does not freeze. The runner pins these scalars to
  /// frozen_anchor() after every local step (paper Alg. 1, line 2).
  virtual const Bitmap* frozen_mask() const { return nullptr; }

  /// Values frozen parameters are pinned to (valid when frozen_mask() is
  /// non-null; same layout as the flat parameter vector).
  virtual std::span<const float> frozen_anchor() const { return {}; }

  virtual std::string name() const = 0;
};

/// Shared plumbing: stores the global model and client count.
class SyncStrategyBase : public SyncStrategy {
 public:
  void init(std::span<const float> initial_params,
            std::size_t num_clients) override;

  std::span<const float> global_params() const override { return global_; }

 protected:
  /// Validates one round's inputs against the registered model BEFORE any
  /// state is mutated, so a rejection is atomic: client/weight counts match,
  /// every client vector has the model dimension (participant or not — a
  /// zero-weight client with a short vector must not be written out of
  /// bounds later), every weight is finite and non-negative with a positive
  /// total, and every participating (weight > 0) payload is finite. Throws
  /// apf::Error; strategies call this first in synchronize().
  void require_round_inputs(
      const std::vector<std::vector<float>>& client_params,
      const std::vector<double>& weights) const;

  /// Weighted average of client params into `out` (normalized weights).
  static void weighted_average(
      const std::vector<std::vector<float>>& client_params,
      const std::vector<double>& weights, std::vector<float>& out);

  std::vector<float> global_;
  std::size_t num_clients_ = 0;
};

/// Vanilla FedAvg: full model both directions every round.
class FullSync : public SyncStrategyBase {
 public:
  Result synchronize(std::size_t round,
                     std::vector<std::vector<float>>& client_params,
                     const std::vector<double>& weights) override;

  std::string name() const override { return "FedAvg"; }
};

}  // namespace apf::fl
