// Simulation metrics export.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/runner.h"

namespace apf::fl {

/// Writes the per-round records of a simulation as CSV (one row per round:
/// round, accuracy, loss, bytes, cumulative bytes, frozen fraction, time).
void write_round_csv(const SimulationResult& result, std::ostream& os);

/// File-path convenience wrapper; throws apf::Error if the file can't open.
void write_round_csv_file(const SimulationResult& result,
                          const std::string& path);

/// One-line human summary ("best=0.903 bytes=23.2MB ...").
std::string summarize(const SimulationResult& result);

}  // namespace apf::fl
