#include "fl/flat_view.h"

#include <algorithm>

#include "util/error.h"

namespace apf::fl {

FlatParamView::FlatParamView(nn::Module& module) {
  for (const auto& p : module.parameters()) {
    segments_.push_back({p.param->value.raw(), p.param->numel()});
    dim_ += p.param->numel();
  }
  APF_CHECK(dim_ > 0);
}

// lint-apf: no-input-checks(out is a pure output buffer, resized here)
void FlatParamView::gather(std::vector<float>& out) const {
  out.resize(dim_);
  std::size_t offset = 0;
  for (const auto& seg : segments_) {
    std::copy(seg.data, seg.data + seg.size, out.data() + offset);
    offset += seg.size;
  }
}

void FlatParamView::scatter(std::span<const float> flat) {
  APF_CHECK(flat.size() == dim_);
  std::size_t offset = 0;
  for (const auto& seg : segments_) {
    std::copy(flat.data() + offset, flat.data() + offset + seg.size, seg.data);
    offset += seg.size;
  }
}

void FlatParamView::pin_masked(const Bitmap& mask,
                               std::span<const float> anchor) {
  APF_CHECK(mask.size() == dim_);
  APF_CHECK(anchor.size() == dim_);
  std::size_t offset = 0;
  for (const auto& seg : segments_) {
    for (std::size_t i = 0; i < seg.size; ++i) {
      const std::size_t j = offset + i;
      if (mask.get(j)) seg.data[i] = anchor[j];
    }
    offset += seg.size;
  }
}

}  // namespace apf::fl
