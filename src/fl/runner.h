// Federated-learning simulator.
//
// Single-process, deterministic reproduction of the paper's testbed: N edge
// clients train local models for Fs iterations per round, synchronize through
// a SyncStrategy (FedAvg, APF, baselines), and the runner accounts bytes and
// simulated wall-clock time under the edge network model. Stragglers and
// FedProx (§7.7) are supported through the config.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/network.h"
#include "fl/sync_strategy.h"
#include "nn/module.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace apf::fl {

/// Straggler handling at the synchronization barrier.
enum class StragglerPolicy {
  kInclude,  // aggregate partial work (FedAvg-naive / FedProx)
  kDrop,     // exclude stragglers from aggregation (FedAvg)
};

/// How client pushes become a new global model each round.
enum class AggregationMode {
  /// BSP rounds: every participant trains, pushes, and the round barriers on
  /// the slowest of them before one batch aggregation (the paper's testbed).
  kSynchronous,
  /// FedBuff-style: pushes land whenever their client finishes (download +
  /// compute + upload under the network model); the server folds arrivals
  /// into a bounded transport::BufferedAggregator with staleness-discounted
  /// weights and commits at goal-K arrivals or a straggler timeout,
  /// whichever is first. Late pushes carry into the next round over the bus
  /// (FinishPolicy::kCarryOver) instead of stalling the commit. Requires a
  /// StreamSync-capable dense strategy (no freezing, no BatchNorm buffers).
  kAsyncBuffered,
};

struct FlConfig {
  std::size_t num_clients = 10;
  std::size_t rounds = 100;
  std::size_t local_iters = 10;  // Fs: local iterations per round
  std::size_t batch_size = 32;
  std::uint64_t seed = 1;

  /// Simulated compute seconds per local iteration (per client).
  double compute_seconds_per_iter = 0.02;

  NetworkModel network;

  /// Evaluate test accuracy every this many rounds.
  std::size_t eval_every = 1;

  /// FedProx proximal coefficient; 0 disables the proximal term.
  double fedprox_mu = 0.0;

  /// Per-client fraction of local_iters actually performed (empty = all 1.0).
  std::vector<double> workload_fraction;

  StragglerPolicy straggler_policy = StragglerPolicy::kInclude;

  /// Fraction of clients participating each round (FedAvg's C). Each round a
  /// ceil(C*N)-subset is drawn; the rest neither train nor communicate and
  /// pick the latest global state up at their next participation (paper
  /// footnote 5: admission control keeps joiners consistent).
  double participation_fraction = 1.0;

  /// Global L2 gradient-norm clip applied before each optimizer step;
  /// 0 disables clipping.
  double grad_clip_norm = 0.0;

  AggregationMode aggregation_mode = AggregationMode::kSynchronous;

  /// kAsyncBuffered: contributions that commit a round (FedBuff's K, also
  /// the buffer capacity). 0 = the per-round participant count, i.e. the
  /// synchronous fan-in.
  std::size_t async_goal_k = 0;

  /// kAsyncBuffered: simulated seconds after a round opens before the server
  /// commits whatever arrived (possibly nothing) and lets the rest carry
  /// over. 0 = wait for goal-K however long it takes.
  double async_timeout_seconds = 0.0;

  /// Per-client compute-speed multipliers — the straggler distribution
  /// (client i's iteration costs multiplier[i] * compute_seconds_per_iter
  /// simulated seconds). Empty = all 1.0. Honored by both aggregation
  /// modes' timing models; simulated time only, training is unaffected.
  std::vector<double> compute_multiplier;

  /// Execution lanes used to train clients in parallel within a round (one
  /// persistent util::ThreadPool serves the whole simulation). Clients are
  /// fully independent between synchronizations and every cross-client
  /// reduction is combined in client index order, so the full
  /// SimulationResult is bit-identical for any lane count. 0 = one lane per
  /// hardware core.
  std::size_t worker_threads = 1;
};

/// One round's metrics.
struct RoundRecord {
  RoundId round;
  double test_accuracy = -1.0;  // -1 when not evaluated this round
  double train_loss = 0.0;      // mean local loss across clients

  /// Traffic this round (up + down) amortized over ALL `num_clients`
  /// clients, participants or not. Under partial participation this is the
  /// paper's per-device budget view: a device that sat the round out still
  /// "spends" its share of zero, pulling the mean down. Use
  /// `bytes_per_participant` for the mean over the clients that actually
  /// communicated this round.
  double bytes_per_client = 0.0;
  double cumulative_bytes_per_client = 0.0;

  /// Number of clients that trained and communicated this round.
  std::size_t participants = 0;
  /// Traffic this round (up + down) averaged over participants only. Equal
  /// to bytes_per_client when participation_fraction == 1.
  double bytes_per_participant = 0.0;

  double frozen_fraction = 0.0;
  /// Simulated time this round took: synchronous rounds end when the last
  /// participant finishes its own compute + comm (and the server link has
  /// drained); async rounds end at the buffer commit (goal-K arrival or
  /// straggler timeout).
  double round_seconds = 0.0;
  double cumulative_seconds = 0.0;

  /// kAsyncBuffered only: (client, staleness) of each contribution folded
  /// into this round's commit, in fold (arrival) order. Staleness is the
  /// number of commit windows since the push was encoded — 0 for a push that
  /// landed in its own round. Empty in synchronous mode.
  std::vector<std::pair<ClientId, std::uint64_t>> staleness;
};

struct SimulationResult {
  std::vector<RoundRecord> rounds;
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  double total_bytes_per_client = 0.0;
  double total_seconds = 0.0;
  double mean_frozen_fraction = 0.0;
  std::vector<float> final_global_params;

  /// Accuracy series (only rounds that were evaluated).
  std::vector<double> accuracy_series() const;
  std::vector<double> frozen_series() const;
  std::vector<double> cumulative_bytes_series() const;
};

/// Builds a fresh model; called once per client plus once for evaluation.
/// Every invocation must produce identically initialized parameters (use a
/// fixed-seed Rng inside the factory).
using ModelFactory = std::function<std::unique_ptr<nn::Module>()>;

/// Builds an optimizer bound to the given module's parameters.
using OptimizerFactory =
    std::function<std::unique_ptr<optim::Optimizer>(nn::Module&)>;

/// Optional per-round observer (round id, global params, client params).
using RoundObserver = std::function<void(
    RoundId round, std::span<const float> global_params,
    const std::vector<std::vector<float>>& client_params)>;

class FederatedRunner {
 public:
  /// `train`/`test` must outlive run(). `partition[i]` selects client i's
  /// training indices; its size must equal config.num_clients.
  FederatedRunner(FlConfig config, const data::Dataset& train,
                  data::Partition partition, const data::Dataset& test,
                  ModelFactory model_factory,
                  OptimizerFactory optimizer_factory,
                  SyncStrategy& strategy);

  /// Optional learning-rate schedule applied at each round (overrides the
  /// optimizer's constant rate).
  void set_lr_schedule(const optim::LrSchedule* schedule) {
    lr_schedule_ = schedule;
  }

  /// Optional observer invoked after every synchronization.
  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }

  SimulationResult run();

 private:
  /// The kAsyncBuffered round loop (docs/TRANSPORT.md, "Asynchronous
  /// rounds"); run() dispatches here so the synchronous path stays
  /// bit-identical, untouched by async bookkeeping.
  SimulationResult run_async();

  FlConfig config_;
  const data::Dataset& train_;
  data::Partition partition_;
  const data::Dataset& test_;
  ModelFactory model_factory_;
  OptimizerFactory optimizer_factory_;
  SyncStrategy& strategy_;
  const optim::LrSchedule* lr_schedule_ = nullptr;
  RoundObserver observer_;
};

}  // namespace apf::fl
