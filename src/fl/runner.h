// Federated-learning simulator.
//
// Single-process, deterministic reproduction of the paper's testbed: N edge
// clients train local models for Fs iterations per round, synchronize through
// a SyncStrategy (FedAvg, APF, baselines), and the runner accounts bytes and
// simulated wall-clock time under the edge network model. Stragglers and
// FedProx (§7.7) are supported through the config.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/network.h"
#include "fl/sync_strategy.h"
#include "nn/module.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace apf::fl {

/// Straggler handling at the synchronization barrier.
enum class StragglerPolicy {
  kInclude,  // aggregate partial work (FedAvg-naive / FedProx)
  kDrop,     // exclude stragglers from aggregation (FedAvg)
};

struct FlConfig {
  std::size_t num_clients = 10;
  std::size_t rounds = 100;
  std::size_t local_iters = 10;  // Fs: local iterations per round
  std::size_t batch_size = 32;
  std::uint64_t seed = 1;

  /// Simulated compute seconds per local iteration (per client).
  double compute_seconds_per_iter = 0.02;

  NetworkModel network;

  /// Evaluate test accuracy every this many rounds.
  std::size_t eval_every = 1;

  /// FedProx proximal coefficient; 0 disables the proximal term.
  double fedprox_mu = 0.0;

  /// Per-client fraction of local_iters actually performed (empty = all 1.0).
  std::vector<double> workload_fraction;

  StragglerPolicy straggler_policy = StragglerPolicy::kInclude;

  /// Fraction of clients participating each round (FedAvg's C). Each round a
  /// ceil(C*N)-subset is drawn; the rest neither train nor communicate and
  /// pick the latest global state up at their next participation (paper
  /// footnote 5: admission control keeps joiners consistent).
  double participation_fraction = 1.0;

  /// Global L2 gradient-norm clip applied before each optimizer step;
  /// 0 disables clipping.
  double grad_clip_norm = 0.0;

  /// Execution lanes used to train clients in parallel within a round (one
  /// persistent util::ThreadPool serves the whole simulation). Clients are
  /// fully independent between synchronizations and every cross-client
  /// reduction is combined in client index order, so the full
  /// SimulationResult is bit-identical for any lane count. 0 = one lane per
  /// hardware core.
  std::size_t worker_threads = 1;
};

/// One round's metrics.
struct RoundRecord {
  RoundId round;
  double test_accuracy = -1.0;  // -1 when not evaluated this round
  double train_loss = 0.0;      // mean local loss across clients

  /// Traffic this round (up + down) amortized over ALL `num_clients`
  /// clients, participants or not. Under partial participation this is the
  /// paper's per-device budget view: a device that sat the round out still
  /// "spends" its share of zero, pulling the mean down. Use
  /// `bytes_per_participant` for the mean over the clients that actually
  /// communicated this round.
  double bytes_per_client = 0.0;
  double cumulative_bytes_per_client = 0.0;

  /// Number of clients that trained and communicated this round.
  std::size_t participants = 0;
  /// Traffic this round (up + down) averaged over participants only. Equal
  /// to bytes_per_client when participation_fraction == 1.
  double bytes_per_participant = 0.0;

  double frozen_fraction = 0.0;
  double round_seconds = 0.0;  // simulated BSP barrier time
  double cumulative_seconds = 0.0;
};

struct SimulationResult {
  std::vector<RoundRecord> rounds;
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  double total_bytes_per_client = 0.0;
  double total_seconds = 0.0;
  double mean_frozen_fraction = 0.0;
  std::vector<float> final_global_params;

  /// Accuracy series (only rounds that were evaluated).
  std::vector<double> accuracy_series() const;
  std::vector<double> frozen_series() const;
  std::vector<double> cumulative_bytes_series() const;
};

/// Builds a fresh model; called once per client plus once for evaluation.
/// Every invocation must produce identically initialized parameters (use a
/// fixed-seed Rng inside the factory).
using ModelFactory = std::function<std::unique_ptr<nn::Module>()>;

/// Builds an optimizer bound to the given module's parameters.
using OptimizerFactory =
    std::function<std::unique_ptr<optim::Optimizer>(nn::Module&)>;

/// Optional per-round observer (round id, global params, client params).
using RoundObserver = std::function<void(
    RoundId round, std::span<const float> global_params,
    const std::vector<std::vector<float>>& client_params)>;

class FederatedRunner {
 public:
  /// `train`/`test` must outlive run(). `partition[i]` selects client i's
  /// training indices; its size must equal config.num_clients.
  FederatedRunner(FlConfig config, const data::Dataset& train,
                  data::Partition partition, const data::Dataset& test,
                  ModelFactory model_factory,
                  OptimizerFactory optimizer_factory,
                  SyncStrategy& strategy);

  /// Optional learning-rate schedule applied at each round (overrides the
  /// optimizer's constant rate).
  void set_lr_schedule(const optim::LrSchedule* schedule) {
    lr_schedule_ = schedule;
  }

  /// Optional observer invoked after every synchronization.
  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }

  SimulationResult run();

 private:
  FlConfig config_;
  const data::Dataset& train_;
  data::Partition partition_;
  const data::Dataset& test_;
  ModelFactory model_factory_;
  OptimizerFactory optimizer_factory_;
  SyncStrategy& strategy_;
  const optim::LrSchedule* lr_schedule_ = nullptr;
  RoundObserver observer_;
};

}  // namespace apf::fl
