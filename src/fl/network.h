// Edge network model.
//
// The paper's testbed gives every client 9 Mbps download / 3 Mbps upload
// (global-average Internet conditions) and the server 10 Gbps. Round time in
// the simulator is the BSP barrier: the slowest client's compute plus its
// two transfers. The server link is shared: with many clients pushing
// simultaneously, the server-side time is total bytes over server bandwidth,
// and the barrier takes whichever side is slower.
#pragma once

#include <cstddef>

namespace apf::fl {

struct NetworkModel {
  double client_download_mbps = 9.0;
  double client_upload_mbps = 3.0;
  double server_bandwidth_mbps = 10000.0;

  /// Seconds for one client to download `bytes`.
  double client_download_seconds(double bytes) const;

  /// Seconds for one client to upload `bytes`.
  double client_upload_seconds(double bytes) const;

  /// Seconds for the server to move `total_bytes` across its link.
  double server_seconds(double total_bytes) const;
};

}  // namespace apf::fl
