// NetworkModel moved to the transport module (it prices the frames the
// message bus carries); this shim keeps the historical apf::fl spelling
// working for configs, tests and benches.
#pragma once

#include "transport/network.h"

namespace apf::fl {

using NetworkModel = transport::NetworkModel;

}  // namespace apf::fl
