#include "fl/network.h"

#include "util/error.h"

namespace apf::fl {

namespace {
double seconds(double bytes, double mbps) {
  APF_CHECK(mbps > 0.0);
  return bytes * 8.0 / (mbps * 1e6);
}
}  // namespace

double NetworkModel::client_download_seconds(double bytes) const {
  APF_CHECK(bytes >= 0.0);
  return seconds(bytes, client_download_mbps);
}

double NetworkModel::client_upload_seconds(double bytes) const {
  APF_CHECK(bytes >= 0.0);
  return seconds(bytes, client_upload_mbps);
}

double NetworkModel::server_seconds(double total_bytes) const {
  APF_CHECK(total_bytes >= 0.0);
  return seconds(total_bytes, server_bandwidth_mbps);
}

}  // namespace apf::fl
