#include "fl/evaluate.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "util/error.h"

namespace apf::fl {

namespace {
template <typename Fn>
void for_each_batch(const data::Dataset& dataset, std::size_t batch_size,
                    Fn&& fn) {
  APF_CHECK(batch_size > 0);
  std::vector<std::size_t> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t start = 0; start < idx.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, idx.size());
    const std::span<const std::size_t> slice(idx.data() + start, end - start);
    fn(dataset.get_batch(slice));
  }
}
}  // namespace

double evaluate_accuracy(nn::Module& module, const data::Dataset& dataset,
                         std::size_t batch_size) {
  APF_CHECK(batch_size > 0);
  const bool was_training = module.training();
  module.set_training(false);
  std::size_t correct = 0;
  for_each_batch(dataset, batch_size, [&](const data::Batch& batch) {
    const Tensor logits = module.forward(batch.inputs);
    correct += static_cast<std::size_t>(
        nn::accuracy(logits, batch.labels) *
            static_cast<double>(batch.size()) +
        0.5);
  });
  module.set_training(was_training);
  return dataset.size() == 0
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(dataset.size());
}

double evaluate_loss(nn::Module& module, const data::Dataset& dataset,
                     std::size_t batch_size) {
  APF_CHECK(batch_size > 0);
  const bool was_training = module.training();
  module.set_training(false);
  double total = 0.0;
  for_each_batch(dataset, batch_size, [&](const data::Batch& batch) {
    const Tensor logits = module.forward(batch.inputs);
    const auto result = nn::softmax_cross_entropy(logits, batch.labels);
    total += static_cast<double>(result.loss) *
             static_cast<double>(batch.size());
  });
  module.set_training(was_training);
  return dataset.size() == 0
             ? 0.0
             : total / static_cast<double>(dataset.size());
}

}  // namespace apf::fl
