#include "fl/evaluate.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace apf::fl {

namespace {
/// Evaluation order is the identity permutation chopped into consecutive
/// batches; batch b covers indices [b * batch_size, ...).
std::size_t num_batches(const data::Dataset& dataset, std::size_t batch_size) {
  return (dataset.size() + batch_size - 1) / batch_size;
}

data::Batch nth_batch(const data::Dataset& dataset, std::size_t batch_size,
                      std::size_t b) {
  const std::size_t start = b * batch_size;
  const std::size_t end = std::min(start + batch_size, dataset.size());
  std::vector<std::size_t> idx(end - start);
  std::iota(idx.begin(), idx.end(), start);
  return dataset.get_batch(idx);
}

/// Exact argmax-match count for one forward pass (integer, no float
/// round-trip through an accuracy fraction).
std::size_t batch_correct(const Tensor& logits,
                          const std::vector<std::size_t>& labels) {
  const auto preds = argmax_rows(logits);
  APF_CHECK(preds.size() == labels.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return correct;
}

template <typename Fn>
void for_each_batch(const data::Dataset& dataset, std::size_t batch_size,
                    Fn&& fn) {
  APF_CHECK(batch_size > 0);
  const std::size_t batches = num_batches(dataset, batch_size);
  for (std::size_t b = 0; b < batches; ++b) {
    fn(nth_batch(dataset, batch_size, b));
  }
}
}  // namespace

std::size_t count_correct(nn::Module& module, const data::Dataset& dataset,
                          std::size_t batch_size) {
  APF_CHECK(batch_size > 0);
  const bool was_training = module.training();
  module.set_training(false);
  std::size_t correct = 0;
  for_each_batch(dataset, batch_size, [&](const data::Batch& batch) {
    const Tensor logits = module.forward(batch.inputs);
    correct += batch_correct(logits, batch.labels);
  });
  module.set_training(was_training);
  return correct;
}

double evaluate_accuracy(nn::Module& module, const data::Dataset& dataset,
                         std::size_t batch_size) {
  APF_CHECK(batch_size > 0);
  return dataset.size() == 0
             ? 0.0
             : static_cast<double>(count_correct(module, dataset, batch_size)) /
                   static_cast<double>(dataset.size());
}

double evaluate_loss(nn::Module& module, const data::Dataset& dataset,
                     std::size_t batch_size) {
  APF_CHECK(batch_size > 0);
  const bool was_training = module.training();
  module.set_training(false);
  double total = 0.0;
  for_each_batch(dataset, batch_size, [&](const data::Batch& batch) {
    const Tensor logits = module.forward(batch.inputs);
    const auto result = nn::softmax_cross_entropy(logits, batch.labels);
    total += static_cast<double>(result.loss) *
             static_cast<double>(batch.size());
  });
  module.set_training(was_training);
  return dataset.size() == 0
             ? 0.0
             : total / static_cast<double>(dataset.size());
}

EvalSums evaluate_sums_parallel(std::span<nn::Module* const> replicas,
                                const data::Dataset& dataset,
                                std::size_t batch_size,
                                util::ThreadPool& pool) {
  APF_CHECK(batch_size > 0 && !replicas.empty());
  for (nn::Module* replica : replicas) APF_CHECK(replica != nullptr);
  EvalSums sums;
  if (dataset.size() == 0) return sums;
  const std::size_t batches = num_batches(dataset, batch_size);
  // Replica r walks batches r, r + R, ...; per-batch results land in
  // batch-indexed slots and are folded in batch order below, so the sums are
  // bit-identical for any replica count (replicas hold identical state).
  const std::size_t lanes = std::min(replicas.size(), batches);
  std::vector<EvalSums> per_batch(batches);
  pool.parallel_for(lanes, [&](std::size_t r) {
    nn::Module& module = *replicas[r];
    const bool was_training = module.training();
    module.set_training(false);
    for (std::size_t b = r; b < batches; b += lanes) {
      const data::Batch batch = nth_batch(dataset, batch_size, b);
      const Tensor logits = module.forward(batch.inputs);
      const auto result = nn::softmax_cross_entropy(logits, batch.labels);
      per_batch[b].correct = batch_correct(logits, batch.labels);
      per_batch[b].loss_sum = static_cast<double>(result.loss) *
                              static_cast<double>(batch.size());
      per_batch[b].total = batch.size();
    }
    module.set_training(was_training);
  });
  for (const EvalSums& b : per_batch) {
    sums.correct += b.correct;
    sums.loss_sum += b.loss_sum;
    sums.total += b.total;
  }
  return sums;
}

}  // namespace apf::fl
