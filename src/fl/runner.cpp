#include "fl/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "data/loader.h"
#include "fl/evaluate.h"
#include "fl/flat_view.h"
#include "nn/loss.h"
#include "nn/param_vector.h"
#include "optim/clip.h"
#include "optim/fedprox.h"
#include "transport/buffered.h"
#include "transport/bus.h"
#include "transport/frame.h"
#include "transport/streaming.h"
#include "util/annotations.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "wire/wire.h"

namespace apf::fl {

std::vector<double> SimulationResult::accuracy_series() const {
  std::vector<double> out;
  for (const auto& r : rounds) {
    if (r.test_accuracy >= 0.0) out.push_back(r.test_accuracy);
  }
  return out;
}

std::vector<double> SimulationResult::frozen_series() const {
  std::vector<double> out;
  out.reserve(rounds.size());
  for (const auto& r : rounds) out.push_back(r.frozen_fraction);
  return out;
}

std::vector<double> SimulationResult::cumulative_bytes_series() const {
  std::vector<double> out;
  out.reserve(rounds.size());
  for (const auto& r : rounds) out.push_back(r.cumulative_bytes_per_client);
  return out;
}

FederatedRunner::FederatedRunner(FlConfig config, const data::Dataset& train,
                                 data::Partition partition,
                                 const data::Dataset& test,
                                 ModelFactory model_factory,
                                 OptimizerFactory optimizer_factory,
                                 SyncStrategy& strategy)
    : config_(std::move(config)),
      train_(train),
      partition_(std::move(partition)),
      test_(test),
      model_factory_(std::move(model_factory)),
      optimizer_factory_(std::move(optimizer_factory)),
      strategy_(strategy) {
  APF_CHECK_MSG(config_.num_clients > 0, "FlConfig::num_clients must be > 0");
  APF_CHECK_MSG(partition_.size() == config_.num_clients,
                "partition size " << partition_.size() << " != clients "
                                  << config_.num_clients);
  APF_CHECK(config_.rounds > 0 && config_.local_iters > 0);
  APF_CHECK(config_.workload_fraction.empty() ||
            config_.workload_fraction.size() == config_.num_clients);
  APF_CHECK(config_.participation_fraction > 0.0 &&
            config_.participation_fraction <= 1.0);
  // Reject a broken network model here, with config context, instead of
  // letting the first transfer_seconds() call trip mid-round (issue #7).
  config_.network.validate("FlConfig::network");
  APF_CHECK(config_.grad_clip_norm >= 0.0);
  APF_CHECK_MSG(config_.compute_multiplier.empty() ||
                    config_.compute_multiplier.size() == config_.num_clients,
                "compute_multiplier size "
                    << config_.compute_multiplier.size() << " != clients "
                    << config_.num_clients);
  for (const double m : config_.compute_multiplier) {
    APF_CHECK_MSG(std::isfinite(m) && m > 0.0,
                  "compute_multiplier entries must be finite and > 0, got "
                      << m);
  }
  APF_CHECK_MSG(config_.async_goal_k <= config_.num_clients,
                "async_goal_k " << config_.async_goal_k << " > clients "
                                << config_.num_clients);
  APF_CHECK_MSG(std::isfinite(config_.async_timeout_seconds) &&
                    config_.async_timeout_seconds >= 0.0,
                "async_timeout_seconds must be finite and >= 0, got "
                    << config_.async_timeout_seconds);
}

SimulationResult FederatedRunner::run() {
  if (config_.aggregation_mode == AggregationMode::kAsyncBuffered) {
    return run_async();
  }
  const std::size_t n = config_.num_clients;

  // Per-client state. All models start bit-identical (factory contract).
  struct Client {
    std::unique_ptr<nn::Module> model;
    std::unique_ptr<optim::Optimizer> optimizer;
    std::unique_ptr<FlatParamView> view;
    std::unique_ptr<data::DataLoader> loader;
    std::size_t iters_per_round = 0;
  };
  std::vector<Client> clients(n);
  Rng seed_rng(config_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    clients[i].model = model_factory_();
    clients[i].optimizer = optimizer_factory_(*clients[i].model);
    clients[i].view = std::make_unique<FlatParamView>(*clients[i].model);
    clients[i].loader = std::make_unique<data::DataLoader>(
        train_, partition_[i], config_.batch_size, seed_rng.split());
    const double frac = config_.workload_fraction.empty()
                            ? 1.0
                            : config_.workload_fraction[i];
    APF_CHECK(frac > 0.0 && frac <= 1.0);
    clients[i].iters_per_round = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(
               frac * static_cast<double>(config_.local_iters))));
  }

  // One persistent pool serves the whole simulation: client training fans
  // out over it every round, and evaluation reuses it with model replicas.
  util::ThreadPool pool(config_.worker_threads);

  // Evaluation replicas (each receives the global params before each eval);
  // one per pool lane, capped by the number of evaluation batches so small
  // test sets don't pay for idle copies.
  const std::size_t eval_batch_size = 128;
  const std::size_t eval_batches =
      (test_.size() + eval_batch_size - 1) / eval_batch_size;
  const std::size_t eval_replica_count =
      std::max<std::size_t>(1, std::min(pool.lanes(), eval_batches));
  std::vector<std::unique_ptr<nn::Module>> eval_models;
  std::vector<std::unique_ptr<FlatParamView>> eval_views;
  for (std::size_t r = 0; r < eval_replica_count; ++r) {
    eval_models.push_back(model_factory_());
    eval_views.push_back(std::make_unique<FlatParamView>(*eval_models[r]));
  }

  const std::size_t dim = clients[0].view->dim();
  std::vector<float> init_params;
  clients[0].view->gather(init_params);
  strategy_.init(init_params, n);
  // Every client starts from the (identical) initial global model.
  for (auto& c : clients) c.view->scatter(strategy_.global_params());

  const std::size_t buffer_dim = nn::flatten_buffers(*clients[0].model).size();

  SimulationResult result;
  result.rounds.reserve(config_.rounds);
  double cum_bytes = 0.0, cum_seconds = 0.0;
  RunningStat frozen_stat;
  std::vector<std::vector<float>> client_params(n);
  std::vector<float> anchor_copy;
  // Partial participation (FedAvg's C): a deterministic per-round subset.
  Rng participation_rng(config_.seed ^ 0xC11E47ULL);
  const std::size_t participants_per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config_.participation_fraction *
                         static_cast<double>(n))));
  std::vector<std::size_t> client_order(n);
  for (std::size_t i = 0; i < n; ++i) client_order[i] = i;
  // Global buffer state (BatchNorm running stats) used for evaluation and
  // handed to joining participants.
  std::vector<float> global_buffers =
      buffer_dim > 0 ? nn::flatten_buffers(*clients[0].model)
                     : std::vector<float>{};

  // All round traffic travels as framed messages over the in-process bus
  // (docs/TRANSPORT.md); per-link byte totals priced once per direction keep
  // the timing bit-identical to the pre-bus accounting.
  transport::Bus bus(config_.network);

  for (std::size_t round = 1; round <= config_.rounds; ++round) {
    if (lr_schedule_ != nullptr) {
      const double lr = lr_schedule_->lr(round - 1);
      for (auto& c : clients) c.optimizer->set_lr(lr);
    }
    // FedProx anchor: the global model this round starts from.
    if (config_.fedprox_mu > 0.0) {
      const auto g = strategy_.global_params();
      anchor_copy.assign(g.begin(), g.end());
    }

    // Draw this round's participants.
    std::vector<bool> participates(n, true);
    if (participants_per_round < n) {
      participation_rng.shuffle(client_order);
      participates.assign(n, false);
      for (std::size_t i = 0; i < participants_per_round; ++i) {
        participates[client_order[i]] = true;
      }
      // Joining clients pull the latest global model + buffers (admission
      // control, paper footnote 5); the pull is charged below.
      for (std::size_t i = 0; i < n; ++i) {
        if (!participates[i]) continue;
        clients[i].view->scatter(strategy_.global_params());
        if (buffer_dim > 0) {
          nn::load_buffers(*clients[i].model, global_buffers);
        }
      }
    }

    const Bitmap* mask = strategy_.frozen_mask();

    // Local training. Clients are independent between synchronizations, so
    // they can be trained on pool lanes with bit-identical results. Losses
    // accumulate into per-CLIENT slots (never per-lane: which lane trains
    // which client varies run to run) and are summed in client index order
    // below, so train_loss is bit-identical for any worker count.
    //
    // The slots live behind a mutex so Clang Thread Safety Analysis can
    // prove the commit protocol instead of trusting the distinct-index
    // argument: each lane trains into locals and commits its client's slot
    // under the lock exactly once. The lock orders nothing — slots are still
    // distinct per client — it only makes the discipline checkable
    // (tools/check_thread_safety.sh covers this TU).
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    double max_compute_seconds = 0.0;
    struct RoundScratch {
      util::Mutex mu;
      std::vector<double> loss APF_GUARDED_BY(mu);
      std::vector<std::size_t> iters APF_GUARDED_BY(mu);
    } scratch;
    {
      util::MutexLock lock(scratch.mu);
      scratch.loss.assign(n, 0.0);
      scratch.iters.assign(n, 0);
    }
    auto train_client = [&](std::size_t i, double& local_loss_sum,
                            std::size_t& local_loss_count) {
      Client& client = clients[i];
      client.model->set_training(true);
      for (std::size_t it = 0; it < client.iters_per_round; ++it) {
        const data::Batch batch = client.loader->next_batch();
        client.optimizer->zero_grad();
        const Tensor logits = client.model->forward(batch.inputs);
        const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
        client.model->backward(loss.grad_logits);
        if (config_.fedprox_mu > 0.0) {
          optim::add_proximal_grad(*client.model, anchor_copy,
                                   config_.fedprox_mu);
        }
        if (config_.grad_clip_norm > 0.0) {
          optim::clip_grad_norm(*client.model, config_.grad_clip_norm);
        }
        client.optimizer->step();
        // Emulate fine-grained freezing: frozen scalars are rolled back to
        // their anchor after every local update (paper Alg. 1, line 2).
        if (mask != nullptr) {
          client.view->pin_masked(*mask, strategy_.frozen_anchor());
        }
        local_loss_sum += loss.loss;
        ++local_loss_count;
      }
    };
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i) {
      if (participates[i]) active.push_back(i);
    }
    // The participant draw clamps to >= 1, so an empty round is a logic bug:
    // it would train nothing and then divide by zero participants below.
    APF_CHECK_MSG(!active.empty(),
                  "round " << round << " selected zero participants");
    pool.parallel_for(active.size(), [&](std::size_t slot) {
      const std::size_t i = active[slot];
      double local_loss_sum = 0.0;
      std::size_t local_loss_count = 0;
      train_client(i, local_loss_sum, local_loss_count);
      util::MutexLock lock(scratch.mu);
      scratch.loss[i] = local_loss_sum;
      scratch.iters[i] = local_loss_count;
    });
    // Ordered reduction: client index order, independent of lane count.
    {
      util::MutexLock lock(scratch.mu);
      for (std::size_t i : active) {
        loss_sum += scratch.loss[i];
        loss_count += scratch.iters[i];
      }
    }
    auto compute_seconds_of = [&](std::size_t i) {
      const double mult = config_.compute_multiplier.empty()
                              ? 1.0
                              : config_.compute_multiplier[i];
      return static_cast<double>(clients[i].iters_per_round) *
             config_.compute_seconds_per_iter * mult;
    };
    for (std::size_t i : active) {
      max_compute_seconds =
          std::max(max_compute_seconds, compute_seconds_of(i));
    }

    // Gather local models and aggregate. Non-participants carry weight 0
    // and their local state is restored after the strategy runs.
    std::vector<double> weights(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      clients[i].view->gather(client_params[i]);
      const bool straggler =
          clients[i].iters_per_round < config_.local_iters;
      const bool dropped =
          straggler && config_.straggler_policy == StragglerPolicy::kDrop;
      weights[i] = (!participates[i] || dropped)
                       ? 0.0
                       : static_cast<double>(partition_[i].size());
    }
    SyncStrategy::Result sync =
        strategy_.synchronize(RoundId(round), client_params, weights);
    APF_CHECK(sync.bytes_up.size() == n && sync.bytes_down.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      if (participates[i]) clients[i].view->scatter(client_params[i]);
      // Non-participants keep their stale local state untouched.
    }

    // ---- Transport phase: every byte of round traffic rides the bus ----
    // The strategy already folded the pushes (its synchronize() is the batch
    // driver over the StreamSync hooks where available), so here the runner
    // routes the actual frames: captured strategy buffers when the strategy
    // provides them, placeholder frames of the declared sizes otherwise, so
    // byte accounting is identical either way. BatchNorm buffers genuinely
    // aggregate on the server side of the bus: aux push frames fold into a
    // streaming mean in ascending client order and the result broadcasts
    // back as one aux frame per participant.
    bus.begin_round(RoundId(round));
    APF_CHECK_MSG(
        sync.frames_up.empty() || sync.frames_up.size() == n,
        strategy_.name() << " captured " << sync.frames_up.size()
                         << " push frames for " << n << " clients");
    const bool captured = sync.frames_up.size() == n;
    // Declared byte counts are ByteCount by type, so the pre-strong-type
    // "declared count must be integral" check is now a compile-time fact.
    auto placeholder_frame = [](ByteCount declared) {
      return std::vector<std::uint8_t>(
          static_cast<std::size_t>(declared.value()), 0);
    };
    for (std::size_t i : active) {
      if (captured) {
        APF_CHECK_MSG(
            ByteCount(sync.frames_up[i].size()) == sync.bytes_up[i],
            strategy_.name() << " client " << i << " push frame size "
                             << sync.frames_up[i].size() << " != declared "
                             << sync.bytes_up[i]);
        if (!sync.frames_up[i].empty()) {
          bus.push(ClientId(i), transport::Frame::Kind::kStrategy,
                   std::move(sync.frames_up[i]));
        }
      } else if (sync.bytes_up[i] > ByteCount(0)) {
        bus.push(ClientId(i), transport::Frame::Kind::kStrategy,
                 placeholder_frame(sync.bytes_up[i]));
      }
      if (buffer_dim > 0) {
        bus.push(ClientId(i), transport::Frame::Kind::kAuxiliary,
                 wire::encode_dense(nn::flatten_buffers(*clients[i].model)));
      }
    }

    // Server side: drain the inboxes in deterministic (client, seq) order,
    // folding aux frames into the buffer mean as they stream past. Peak
    // server memory stays O(model): one streaming accumulator, never a
    // per-client staging table.
    ByteCount buffer_bytes;
    {
      transport::StreamingAggregator buf_agg(buffer_dim);
      for (transport::Frame& frame : bus.take_pushes()) {
        if (frame.kind != transport::Frame::Kind::kAuxiliary) continue;
        const std::vector<float> decoded = wire::decode_dense(frame.payload);
        buffer_bytes = frame.size_bytes();
        buf_agg.fold(frame.client, decoded, 1.0);
      }
      if (buffer_dim > 0) {
        APF_CHECK(buf_agg.folded() > 0);
        buf_agg.finish_mean(global_buffers);
      }
    }
    std::vector<std::uint8_t> buffer_down;
    if (buffer_dim > 0) {
      buffer_down = wire::encode_dense(global_buffers);
      // Dense frames are symmetric, so one count covers both directions.
      APF_CHECK(buffer_bytes == ByteCount(buffer_down.size()));
    }

    // Pull direction: the strategy's pull frame (per-client when it ships
    // distinct payloads, the shared broadcast otherwise) plus the buffer
    // broadcast, delivered per participant and drained from each mailbox.
    const bool per_client_down = captured && sync.frames_down.size() == n;
    for (std::size_t i : active) {
      std::vector<std::uint8_t> down;
      if (per_client_down && !sync.frames_down[i].empty()) {
        down = std::move(sync.frames_down[i]);
      } else if (captured && !sync.broadcast_frame.empty() &&
                 sync.bytes_down[i] > ByteCount(0)) {
        down = sync.broadcast_frame;  // one copy per receiving client
      } else if (sync.bytes_down[i] > ByteCount(0)) {
        down = placeholder_frame(sync.bytes_down[i]);
      }
      if (!down.empty()) {
        APF_CHECK_MSG(
            ByteCount(down.size()) == sync.bytes_down[i],
            strategy_.name() << " client " << i << " pull frame size "
                             << down.size() << " != declared "
                             << sync.bytes_down[i]);
        bus.deliver(ClientId(i), transport::Frame::Kind::kStrategy,
                    std::move(down));
      }
      if (buffer_dim > 0) {
        bus.deliver(ClientId(i), transport::Frame::Kind::kAuxiliary,
                    buffer_down);
      }
    }
    for (std::size_t i : active) {
      for (transport::Frame& frame : bus.take_pulls(ClientId(i))) {
        if (frame.kind == transport::Frame::Kind::kAuxiliary) {
          nn::load_buffers(*clients[i].model,
                           wire::decode_dense(frame.payload));
        }
        // Strategy pull frames were already applied by synchronize() (the
        // batch driver runs apply_pull itself); the bus leg is the wire.
      }
    }

    // Byte and time accounting: BSP barrier = slowest participant, and the
    // server link carries everyone's traffic. The bus prices each link's
    // byte totals once per direction, reproducing the pre-bus arithmetic
    // bit for bit.
    const transport::RoundStats net = bus.finish_round();
    // Exit the measured integer domain exactly once: everything below is
    // amortization/pricing math, which runs in double as it always has.
    const double total_bytes_all_clients = net.total_bytes.to_double();
    // bytes_per_client amortizes the round's traffic over ALL n clients
    // (non-participants contribute zero traffic but stay in the
    // denominator); bytes_per_participant divides by participants only. See
    // the RoundRecord field docs in runner.h.
    const double mean_bytes =
        total_bytes_all_clients / static_cast<double>(n);
    const double participant_bytes =
        total_bytes_all_clients / static_cast<double>(active.size());
    // Completion-time model: the round ends when the LAST client finishes
    // its own compute followed by its own transfers, max_i(compute_i +
    // comm_i) — NOT max_compute + max_comm, which glued the slowest computer
    // to the slowest communicator even when they were different clients. The
    // shared server link is still a floor: it cannot start before uploads
    // begin nor end before carrying every byte, so max_compute +
    // server_seconds lower-bounds the round as before. When every client's
    // compute is equal (the homogeneous default) both models coincide
    // exactly: max_i(C + comm_i) = C + max_comm.
    double max_completion_seconds = max_compute_seconds;
    for (const auto& [link_client, link_comm] : net.link_comm_seconds) {
      max_completion_seconds = std::max(
          max_completion_seconds,
          compute_seconds_of(static_cast<std::size_t>(link_client.value())) +
              link_comm);
    }
    const double round_seconds =
        std::max(max_completion_seconds,
                 max_compute_seconds +
                     config_.network.server_seconds(total_bytes_all_clients));

    cum_bytes += mean_bytes;
    cum_seconds += round_seconds;
    frozen_stat.add(sync.frozen_fraction);

    RoundRecord record;
    record.round = RoundId(round);
    record.train_loss =
        loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0;
    record.bytes_per_client = mean_bytes;
    record.cumulative_bytes_per_client = cum_bytes;
    record.participants = active.size();
    record.bytes_per_participant = participant_bytes;
    record.frozen_fraction = sync.frozen_fraction;
    record.round_seconds = round_seconds;
    record.cumulative_seconds = cum_seconds;
    if (round % config_.eval_every == 0 || round == config_.rounds) {
      // Evaluate the server-side global model on the pool: every replica
      // receives the identical global state, batches are interleaved across
      // replicas, and counts recombine in batch order, so the accuracy is
      // bit-identical for any worker count.
      std::vector<nn::Module*> replicas;
      replicas.reserve(eval_models.size());
      for (std::size_t r = 0; r < eval_models.size(); ++r) {
        eval_views[r]->scatter(strategy_.global_params());
        if (buffer_dim > 0) {
          nn::load_buffers(*eval_models[r], global_buffers);
        }
        replicas.push_back(eval_models[r].get());
      }
      const EvalSums eval =
          evaluate_sums_parallel(replicas, test_, eval_batch_size, pool);
      record.test_accuracy =
          eval.total == 0 ? 0.0
                          : static_cast<double>(eval.correct) /
                                static_cast<double>(eval.total);
      result.best_accuracy =
          std::max(result.best_accuracy, record.test_accuracy);
      result.final_accuracy = record.test_accuracy;
      APF_INFO("round " << round << " acc=" << record.test_accuracy
                        << " frozen=" << record.frozen_fraction
                        << " loss=" << record.train_loss);
    }
    result.rounds.push_back(record);
    if (observer_) {
      observer_(RoundId(round), strategy_.global_params(), client_params);
    }
  }

  result.total_bytes_per_client = cum_bytes;
  result.total_seconds = cum_seconds;
  result.mean_frozen_fraction = frozen_stat.mean();
  const auto g = strategy_.global_params();
  result.final_global_params.assign(g.begin(), g.end());
  APF_CHECK(result.final_global_params.size() == dim);
  return result;
}

// FedBuff-style asynchronous rounds (docs/TRANSPORT.md, "Asynchronous
// rounds"). Each round is a COMMIT WINDOW, not a barrier:
//
//   - clients with no push in flight join: pull the global (dense frame),
//     train on the pool, and push the strategy-encoded result; their push
//     "arrives" at window start + download + compute + upload under the
//     network model (compute scaled by the per-client straggler multiplier);
//   - the server folds arrivals in ARRIVAL order into a bounded
//     BufferedAggregator with staleness-discounted weights, and commits at
//     the goal-K-th arrival or the straggler timeout, whichever is first;
//   - pushes that miss the commit stay queued: finish_round(kCarryOver)
//     carries them (original round id, bytes charged once at push time)
//     into the next window, where their staleness has grown by one.
//
// Everything timing-related is derived from deterministic simulated values,
// and training is the same per-client bit-identical kernel the synchronous
// path uses, so the full SimulationResult is bit-identical for any
// worker_threads — the async tests pin this.
SimulationResult FederatedRunner::run_async() {
  const std::size_t n = config_.num_clients;
  StreamSync* stream = strategy_.stream_sync();
  APF_CHECK_MSG(stream != nullptr,
                "AggregationMode::kAsyncBuffered requires a StreamSync-"
                "capable strategy; "
                    << strategy_.name() << " is batch-only");

  struct Client {
    std::unique_ptr<nn::Module> model;
    std::unique_ptr<optim::Optimizer> optimizer;
    std::unique_ptr<FlatParamView> view;
    std::unique_ptr<data::DataLoader> loader;
    std::size_t iters_per_round = 0;
  };
  std::vector<Client> clients(n);
  Rng seed_rng(config_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    clients[i].model = model_factory_();
    clients[i].optimizer = optimizer_factory_(*clients[i].model);
    clients[i].view = std::make_unique<FlatParamView>(*clients[i].model);
    clients[i].loader = std::make_unique<data::DataLoader>(
        train_, partition_[i], config_.batch_size, seed_rng.split());
    const double frac = config_.workload_fraction.empty()
                            ? 1.0
                            : config_.workload_fraction[i];
    APF_CHECK(frac > 0.0 && frac <= 1.0);
    clients[i].iters_per_round = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(
               frac * static_cast<double>(config_.local_iters))));
  }

  util::ThreadPool pool(config_.worker_threads);

  const std::size_t eval_batch_size = 128;
  const std::size_t eval_batches =
      (test_.size() + eval_batch_size - 1) / eval_batch_size;
  const std::size_t eval_replica_count =
      std::max<std::size_t>(1, std::min(pool.lanes(), eval_batches));
  std::vector<std::unique_ptr<nn::Module>> eval_models;
  std::vector<std::unique_ptr<FlatParamView>> eval_views;
  for (std::size_t r = 0; r < eval_replica_count; ++r) {
    eval_models.push_back(model_factory_());
    eval_views.push_back(std::make_unique<FlatParamView>(*eval_models[r]));
  }

  const std::size_t dim = clients[0].view->dim();
  std::vector<float> init_params;
  clients[0].view->gather(init_params);
  strategy_.init(init_params, n);
  APF_CHECK_MSG(strategy_.frozen_mask() == nullptr,
                "AggregationMode::kAsyncBuffered aggregates dense full-model "
                "pushes; "
                    << strategy_.name() << " freezes coordinates");
  const std::size_t buffer_dim = nn::flatten_buffers(*clients[0].model).size();
  APF_CHECK_MSG(buffer_dim == 0,
                "AggregationMode::kAsyncBuffered does not aggregate BatchNorm "
                "buffers yet (model carries "
                    << buffer_dim << " buffer scalars)");

  // The runner owns the async global: a commit folds pushes from several
  // origin rounds at once, which the strategy's per-round batch
  // synchronize() contract cannot express.
  std::vector<float> global(strategy_.global_params().begin(),
                            strategy_.global_params().end());
  for (auto& c : clients) c.view->scatter(global);
  // Push-format probe: the commit decodes pushes as dense frames, so the
  // strategy's encoding must round-trip through the dense codec.
  {
    const std::vector<std::uint8_t> probe =
        stream->encode_push(ClientId(0), global);
    APF_CHECK_MSG(wire::decode_dense(probe).size() == dim,
                  strategy_.name()
                      << " push frames are not dense; kAsyncBuffered "
                         "supports dense full-model strategies only");
  }

  auto compute_seconds_of = [&](std::size_t i) {
    const double mult = config_.compute_multiplier.empty()
                            ? 1.0
                            : config_.compute_multiplier[i];
    return static_cast<double>(clients[i].iters_per_round) *
           config_.compute_seconds_per_iter * mult;
  };

  SimulationResult result;
  result.rounds.reserve(config_.rounds);
  double cum_bytes = 0.0, cum_seconds = 0.0;
  std::vector<std::vector<float>> client_params(n);
  std::vector<float> anchor_copy;
  Rng participation_rng(config_.seed ^ 0xC11E47ULL);
  const std::size_t participants_per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config_.participation_fraction *
                         static_cast<double>(n))));
  std::vector<std::size_t> client_order(n);
  for (std::size_t i = 0; i < n; ++i) client_order[i] = i;

  const std::size_t goal_k =
      std::min(n, config_.async_goal_k == 0 ? participants_per_round
                                            : config_.async_goal_k);
  transport::Bus bus(config_.network);
  transport::BufferedAggregator buffer(dim, goal_k);

  // One entry per push in flight; a client trains again only after its push
  // has been folded.
  struct Pending {
    double arrival = 0.0;  // absolute simulated time the push lands
    double weight = 0.0;   // partition-size aggregation weight
  };
  std::vector<std::optional<Pending>> pending(n);
  double now = 0.0;

  for (std::size_t round = 1; round <= config_.rounds; ++round) {
    if (lr_schedule_ != nullptr) {
      const double lr = lr_schedule_->lr(round - 1);
      for (auto& c : clients) c.optimizer->set_lr(lr);
    }
    bus.begin_round(RoundId(round));
    buffer.begin_round(RoundId(round));
    // FedProx anchor: the global the joiners are about to pull.
    if (config_.fedprox_mu > 0.0) {
      anchor_copy.assign(global.begin(), global.end());
    }

    // Joiners: a deterministic draw among clients with no push in flight.
    std::vector<std::size_t> joiners;
    if (participants_per_round < n) {
      participation_rng.shuffle(client_order);
      for (const std::size_t idx : client_order) {
        if (joiners.size() == participants_per_round) break;
        if (!pending[idx].has_value()) joiners.push_back(idx);
      }
      std::sort(joiners.begin(), joiners.end());
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!pending[i].has_value()) joiners.push_back(i);
      }
    }

    // Pull: joiners download the current global as one dense frame each.
    const std::vector<std::uint8_t> down = wire::encode_dense(global);
    for (const std::size_t i : joiners) {
      bus.deliver(ClientId(i), transport::Frame::Kind::kStrategy, down);
    }
    for (const std::size_t i : joiners) {
      for (transport::Frame& frame : bus.take_pulls(ClientId(i))) {
        clients[i].view->scatter(wire::decode_dense(frame.payload));
      }
    }

    // Local training, same commit protocol as the synchronous path: losses
    // land in per-client slots under the scratch mutex and reduce in client
    // index order, so train_loss is bit-identical for any lane count.
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    struct RoundScratch {
      util::Mutex mu;
      std::vector<double> loss APF_GUARDED_BY(mu);
      std::vector<std::size_t> iters APF_GUARDED_BY(mu);
    } scratch;
    {
      util::MutexLock lock(scratch.mu);
      scratch.loss.assign(n, 0.0);
      scratch.iters.assign(n, 0);
    }
    pool.parallel_for(joiners.size(), [&](std::size_t slot) {
      const std::size_t i = joiners[slot];
      Client& client = clients[i];
      client.model->set_training(true);
      double local_loss_sum = 0.0;
      std::size_t local_loss_count = 0;
      for (std::size_t it = 0; it < client.iters_per_round; ++it) {
        const data::Batch batch = client.loader->next_batch();
        client.optimizer->zero_grad();
        const Tensor logits = client.model->forward(batch.inputs);
        const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
        client.model->backward(loss.grad_logits);
        if (config_.fedprox_mu > 0.0) {
          optim::add_proximal_grad(*client.model, anchor_copy,
                                   config_.fedprox_mu);
        }
        if (config_.grad_clip_norm > 0.0) {
          optim::clip_grad_norm(*client.model, config_.grad_clip_norm);
        }
        client.optimizer->step();
        local_loss_sum += loss.loss;
        ++local_loss_count;
      }
      util::MutexLock lock(scratch.mu);
      scratch.loss[i] = local_loss_sum;
      scratch.iters[i] = local_loss_count;
    });
    {
      util::MutexLock lock(scratch.mu);
      for (const std::size_t i : joiners) {
        loss_sum += scratch.loss[i];
        loss_count += scratch.iters[i];
      }
    }

    // Push: each joiner's encoded result is queued NOW (bytes charge at
    // push, in this window) but only ARRIVES after its download + compute +
    // upload; until then it is a straggler frame the commit may miss.
    for (const std::size_t i : joiners) {
      clients[i].view->gather(client_params[i]);
      std::vector<std::uint8_t> up =
          stream->encode_push(ClientId(i), client_params[i]);
      double comm_seconds =
          config_.network.client_download_seconds(ByteCount(down.size())) +
          config_.network.client_upload_seconds(ByteCount(up.size()));
      if (config_.network.frame_latency_seconds > 0.0) {
        comm_seconds += 2.0 * config_.network.frame_latency_seconds;
      }
      Pending entry;
      entry.arrival = now + compute_seconds_of(i) + comm_seconds;
      entry.weight = static_cast<double>(partition_[i].size());
      bus.push(ClientId(i), transport::Frame::Kind::kStrategy,
               std::move(up));
      pending[i] = entry;
    }

    // Commit decision: fold the first goal-K arrivals if the K-th lands
    // before the timeout, otherwise whatever arrived by the timeout
    // (possibly nothing). Ties and order are exact doubles from the
    // deterministic timing model, so the schedule is reproducible.
    std::vector<std::pair<double, std::size_t>> arrivals;
    for (std::size_t i = 0; i < n; ++i) {
      if (pending[i].has_value()) {
        arrivals.emplace_back(pending[i]->arrival, i);
      }
    }
    std::sort(arrivals.begin(), arrivals.end());
    APF_CHECK_MSG(!arrivals.empty(),
                  "async round " << round << " has no push in flight");
    const std::size_t k = std::min(goal_k, arrivals.size());
    const double deadline =
        config_.async_timeout_seconds > 0.0
            ? now + config_.async_timeout_seconds
            : std::numeric_limits<double>::infinity();
    double commit_time;
    std::size_t fold_count;
    if (arrivals[k - 1].first <= deadline) {
      commit_time = arrivals[k - 1].first;
      fold_count = k;
    } else {
      commit_time = deadline;
      fold_count = 0;
      while (fold_count < arrivals.size() &&
             arrivals[fold_count].first <= deadline) {
        ++fold_count;
      }
    }

    // Fold the committed arrivals in arrival order; everything else stays
    // queued on the bus and carries over.
    RoundRecord record;
    record.round = RoundId(round);
    for (std::size_t c = 0; c < fold_count; ++c) {
      const std::size_t i = arrivals[c].second;
      std::vector<transport::Frame> frames = bus.take_pushes(ClientId(i));
      APF_CHECK_MSG(frames.size() == 1,
                    "async client " << i << " had " << frames.size()
                                    << " pushes in flight (expected 1)");
      transport::Frame& frame = frames[0];
      buffer.fold(frame.client, frame.round, wire::decode_dense(frame.payload),
                  pending[i]->weight);
      record.staleness.emplace_back(
          frame.client, RoundId(round).value() - frame.round.value());
      pending[i].reset();
    }
    if (buffer.buffered() > 0) {
      buffer.commit(global);
    }
    const transport::RoundStats net =
        bus.finish_round(transport::FinishPolicy::kCarryOver);

    const double total_bytes_all_clients = net.total_bytes.to_double();
    const double mean_bytes =
        total_bytes_all_clients / static_cast<double>(n);
    // The window closes at the commit — goal-K arrival or timeout — never
    // at the slowest straggler; the shared server link (which must carry
    // every byte queued this window) still floors it. A commit_time in the
    // past means the arrivals were already waiting: zero additional wait.
    const double round_seconds =
        std::max(std::max(0.0, commit_time - now),
                 config_.network.server_seconds(total_bytes_all_clients));
    now += round_seconds;

    cum_bytes += mean_bytes;
    cum_seconds += round_seconds;
    record.train_loss =
        loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0;
    record.bytes_per_client = mean_bytes;
    record.cumulative_bytes_per_client = cum_bytes;
    record.participants = fold_count;
    record.bytes_per_participant =
        fold_count ? total_bytes_all_clients /
                         static_cast<double>(fold_count)
                   : 0.0;
    record.frozen_fraction = 0.0;
    record.round_seconds = round_seconds;
    record.cumulative_seconds = cum_seconds;
    if (round % config_.eval_every == 0 || round == config_.rounds) {
      std::vector<nn::Module*> replicas;
      replicas.reserve(eval_models.size());
      for (std::size_t r = 0; r < eval_models.size(); ++r) {
        eval_views[r]->scatter(global);
        replicas.push_back(eval_models[r].get());
      }
      const EvalSums eval =
          evaluate_sums_parallel(replicas, test_, eval_batch_size, pool);
      record.test_accuracy =
          eval.total == 0 ? 0.0
                          : static_cast<double>(eval.correct) /
                                static_cast<double>(eval.total);
      result.best_accuracy =
          std::max(result.best_accuracy, record.test_accuracy);
      result.final_accuracy = record.test_accuracy;
      APF_INFO("async round " << round << " acc=" << record.test_accuracy
                              << " folded=" << fold_count
                              << " loss=" << record.train_loss);
    }
    result.rounds.push_back(record);
    if (observer_) {
      for (std::size_t i = 0; i < n; ++i) {
        clients[i].view->gather(client_params[i]);
      }
      observer_(RoundId(round), global, client_params);
    }
  }

  result.total_bytes_per_client = cum_bytes;
  result.total_seconds = cum_seconds;
  result.mean_frozen_fraction = 0.0;
  result.final_global_params = global;
  APF_CHECK(result.final_global_params.size() == dim);
  return result;
}

}  // namespace apf::fl
