// Flat addressing over a module's parameters without copying.
//
// The runner needs to pin frozen scalars to anchor values after every local
// optimizer step. FlatParamView caches the parameter segment pointers so
// gather/scatter/pin run straight over the underlying tensors.
#pragma once

#include <span>
#include <vector>

#include "nn/module.h"
#include "util/bitmap.h"

namespace apf::fl {

class FlatParamView {
 public:
  /// The module must outlive the view; parameter storage addresses must stay
  /// stable (they do: modules never reallocate their parameter tensors).
  explicit FlatParamView(nn::Module& module);

  std::size_t dim() const { return dim_; }

  /// Copies all parameters into `out` (resized to dim()).
  void gather(std::vector<float>& out) const;

  /// Writes `flat` (size dim()) into the module parameters.
  void scatter(std::span<const float> flat);

  /// For every set bit in `mask`, writes anchor[j] into parameter j —
  /// the rollback that emulates fine-grained freezing (paper Alg. 1 l.2).
  void pin_masked(const Bitmap& mask, std::span<const float> anchor);

 private:
  struct Segment {
    float* data;
    std::size_t size;
  };
  std::vector<Segment> segments_;
  std::size_t dim_ = 0;
};

}  // namespace apf::fl
